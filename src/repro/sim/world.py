"""Worlds: many Cinder devices on one shared clock.

The production question the ROADMAP asks — millions of users, fleets
of simulated handsets — needs more than one :class:`DeviceRuntime`
per experiment.  A :class:`World` runs N devices in lockstep on a
shared tick grid:

* every device is constructed on the world's ``tick_s`` and (by
  default) the world's shared :class:`~repro.net.remote.RemoteHosts`,
  so all devices talk to the same synthetic server universe;
* per iteration the world asks every device for its fast-forward
  horizon and advances all of them by the **global minimum** — the
  same min-over-sources discipline each device already applies to its
  own event sources, lifted one level up.  A device whose closed form
  refuses a span (a state-dependent refusal: mid-span clamp, capacity
  pressure, debt — chained topologies now solve through the coupled
  span solver) ticks through it instead, so the fleet never skips an
  event and never desynchronizes;
* devices stay tick-aligned by construction: every iteration moves
  every device by the same whole number of ticks.

A one-device world is *sample-for-sample identical* to running the
bare :class:`~repro.sim.engine.CinderSystem` — the world loop is the
same decomposition ``run`` uses internally (the differential tests
pin this).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import SimulationError
from ..net.remote import RemoteHosts
from .engine import CinderSystem, DeviceRuntime


class World:
    """A fleet of devices advancing on one shared tick grid."""

    def __init__(self, tick_s: float = 0.01,
                 hosts: Optional[RemoteHosts] = None,
                 fast_forward: bool = True,
                 seed: int = 0) -> None:
        if tick_s <= 0:
            raise SimulationError("tick must be positive")
        self.tick_s = tick_s
        #: The shared remote-server universe every device talks to.
        self.hosts = hosts if hosts is not None else RemoteHosts.default()
        self.fast_forward = fast_forward
        self.seed = seed
        self.devices: List[DeviceRuntime] = []
        self._by_name: Dict[str, DeviceRuntime] = {}
        #: Telemetry: world iterations that macro-stepped vs ticked.
        self.macro_steps = 0
        self.tick_steps = 0

    # -- fleet assembly ---------------------------------------------------------

    def add_device(self, name: Optional[str] = None,
                   **kwargs) -> CinderSystem:
        """Construct and enroll a :class:`CinderSystem`.

        Keyword arguments are forwarded to the ``CinderSystem``
        constructor; ``tick_s``, ``hosts`` and ``fast_forward``
        default to the world's, and ``seed`` defaults to a
        deterministic per-device derivation of the world seed.
        """
        kwargs.setdefault("tick_s", self.tick_s)
        kwargs.setdefault("hosts", self.hosts)
        kwargs.setdefault("fast_forward", self.fast_forward)
        kwargs.setdefault("seed", self.seed + 101 * len(self.devices))
        if kwargs["tick_s"] != self.tick_s:
            raise SimulationError(
                f"device tick {kwargs['tick_s']} != world tick {self.tick_s}")
        system = CinderSystem(**kwargs)
        return self.adopt(system, name=name)

    def adopt(self, runtime: DeviceRuntime,
              name: Optional[str] = None) -> DeviceRuntime:
        """Enroll an externally-assembled runtime (pluggable components).

        The runtime must share the world's tick size and must not have
        ticked past the fleet — devices advance in lockstep from the
        moment they join.
        """
        if runtime.clock.tick_s != self.tick_s:
            raise SimulationError(
                f"device tick {runtime.clock.tick_s} != world tick "
                f"{self.tick_s}")
        if runtime.clock.ticks != self.ticks:
            raise SimulationError(
                "a device must join the world at the fleet's current tick "
                f"({runtime.clock.ticks} != {self.ticks})")
        name = name if name is not None else f"device{len(self.devices)}"
        if name in self._by_name:
            raise SimulationError(f"duplicate device name {name!r}")
        self.devices.append(runtime)
        self._by_name[name] = runtime
        return runtime

    def device(self, name: str) -> DeviceRuntime:
        """Look up an enrolled device by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SimulationError(f"no device named {name!r}")

    # -- shared time -------------------------------------------------------------

    @property
    def now(self) -> float:
        """The shared simulation time (0.0 for an empty world)."""
        return self.devices[0].clock.now if self.devices else 0.0

    @property
    def ticks(self) -> int:
        """Ticks taken so far on the shared grid."""
        return self.devices[0].clock.ticks if self.devices else 0

    @property
    def fast_forwarded_ticks(self) -> int:
        """Total ticks skipped across the fleet."""
        return sum(d.fast_forwarded_ticks for d in self.devices)

    @property
    def degraded_spans(self) -> int:
        """Degraded windows across the fleet: maximal tick runs whose
        spans a device's closed form refused (it ticked instead).

        Chained topologies used to land here wholesale and drag the
        whole fleet down to tick-by-tick; with the coupled span solver
        only state-dependent refusals (mid-span clamp, capacity
        pressure, debt repayment) remain.
        """
        return sum(d.span_refusals for d in self.devices)

    # -- the world loop -----------------------------------------------------------

    def _advance_once(self, deadline: float) -> None:
        """One world iteration: global min-horizon or one tick each."""
        devices = self.devices
        ticks = min(d._ff_horizon_ticks(deadline) for d in devices)
        if ticks >= 2:
            for device in devices:
                if not device._ff_advance(ticks):
                    # The device's closed form refused this span (e.g.
                    # a clamping tap): tick it through the same ticks
                    # so the fleet stays aligned.
                    for _ in range(ticks):
                        device.step()
            self.macro_steps += 1
        else:
            for device in devices:
                device.step()
            self.tick_steps += 1

    def run(self, duration_s: float) -> None:
        """Advance the whole fleet by ``duration_s`` of simulated time."""
        if duration_s < 0:
            raise SimulationError("duration must be non-negative")
        if not self.devices:
            raise SimulationError("world has no devices")
        deadline = self.now + duration_s
        while self.now < deadline - 1e-12:
            self._advance_once(deadline)

    def run_until(self, predicate: Callable[[], bool],
                  max_s: float = 36_000.0) -> float:
        """Run until ``predicate()`` or ``max_s``; returns elapsed time.

        The predicate is checked after every world iteration — every
        normal tick and every global event horizon.
        """
        if not self.devices:
            raise SimulationError("world has no devices")
        start = self.now
        deadline = start + max_s
        while not predicate():
            if self.now - start >= max_s:
                raise SimulationError(
                    f"run_until exceeded {max_s} simulated seconds")
            self._advance_once(deadline)
        return self.now - start

    # -- fleet reporting -----------------------------------------------------------

    def total_metered_energy(self) -> float:
        """Sum of every device meter's integrated energy (joules)."""
        return sum(d.meter.total_energy_joules for d in self.devices)

    def total_radio_activations(self) -> int:
        """Radio power-ups across the fleet."""
        return sum(d.radio.activation_count for d in self.devices)

    def conservation_error(self) -> float:
        """Worst absolute per-device graph conservation error."""
        if not self.devices:
            return 0.0
        return max(abs(d.graph.conservation_error()) for d in self.devices)
