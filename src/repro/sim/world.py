"""Worlds: many Cinder devices on one shared clock.

The production question the ROADMAP asks — millions of users, fleets
of simulated handsets — needs more than one :class:`DeviceRuntime`
per experiment.  A :class:`World` runs N devices on a shared time
grid:

* every device is constructed on the world's ``tick_s`` and (by
  default) the world's shared :class:`~repro.net.remote.RemoteHosts`,
  so all devices talk to the same synthetic server universe;
* per iteration the world asks every device for its fast-forward
  horizon and advances all of them by the **global minimum** — the
  same min-over-sources discipline each device already applies to its
  own event sources, lifted one level up.  A device whose closed form
  refuses a span (a state-dependent refusal: mid-span clamp, capacity
  pressure, debt) ticks through it instead, so the fleet never skips
  an event and never desynchronizes;
* devices stay tick-aligned by construction: every iteration moves
  every device by the same whole number of ticks.

At fleet scale the naive loop pays full per-device Python overhead
every iteration, so the default scheduler is **cohort-batched**
(``batched=True``):

* the **horizon tier** keeps a struct-of-arrays cache of each
  device's absolute next-event tick.  Firm horizons (timer deadlines,
  sleeper wakes, radio timeouts, exact pooled-crossing ticks — see
  :attr:`~repro.sim.events.EventSource.horizon_firm`) are reused
  across iterations and the global minimum is one numpy reduction;
  soft horizons (conservative checkpoints) are re-polled.  Cached
  firm targets are exactly what a fresh poll would return, so the
  batched world takes the *same* macro/tick decisions as the
  reference loop;
* the **cohort tier** groups devices whose compiled
  :class:`~repro.core.flowplan.FlowPlan` signatures match (same live
  topology, same frozen-tap set, same decay constant) and stacks
  their graph work: one ``(n_devices, n_reserves)`` kernel call per
  tick round (:func:`repro.core.flowplan.execute_tick_batch`) and one
  stacked span solve per macro-step
  (:func:`repro.core.spansolver.execute_span_batch`), which reuses a
  single eigendecomposition across the cohort on coupled topologies.
  A device whose topology diverges — or whose span the solver refuses
  — falls out of the cohort to the per-device path for that
  iteration, counted in :attr:`cohort_fallbacks`;
* devices may run on **different tick grids**: the world aligns them
  on the least common multiple of their tick periods and advances
  mixed-grid fleets barrier-to-barrier (each device runs its own
  macro-step loop up to the shared barrier instant, which lies on
  every device's grid by construction).

``batched=False`` keeps the plain PR-2 loop as the reference
scheduler; ``fast_forward=False`` disables macro-stepping entirely
(the tick-slicing baseline).  Process-level sharding — partitions of
a fleet macro-stepping in parallel worker processes between clock
barriers — lives in :mod:`repro.sim.shards` on top of this class.

A one-device world is *sample-for-sample identical* to running the
bare :class:`~repro.sim.engine.CinderSystem` — the world loop is the
same decomposition ``run`` uses internally (the differential tests
pin this).
"""

from __future__ import annotations

import heapq
import math
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core import flowplan as _flowplan
from ..core import spansolver as _spansolver
from ..errors import SimulationError
from ..net.remote import RemoteHosts
from .engine import CinderSystem, DeviceRuntime


class World:
    """A fleet of devices advancing on one shared time grid."""

    def __init__(self, tick_s: float = 0.01,
                 hosts: Optional[RemoteHosts] = None,
                 fast_forward: bool = True,
                 batched: bool = True,
                 independent_cohorts: bool = True,
                 seed: int = 0) -> None:
        if tick_s <= 0:
            raise SimulationError("tick must be positive")
        self.tick_s = tick_s
        #: The shared remote-server universe every device talks to.
        self.hosts = hosts if hosts is not None else RemoteHosts.default()
        self.fast_forward = fast_forward
        #: Cohort-batched scheduling (horizon cache + stacked graph
        #: work).  The reference per-device loop survives at
        #: ``batched=False`` as the differential oracle.
        self.batched = batched and fast_forward
        #: Event-time-bucketed cohort scheduling on the *independent*
        #: path (see :meth:`_run_independent`).  The plain per-device
        #: ``device.run(chunk)`` loop survives at
        #: ``independent_cohorts=False`` as the differential oracle,
        #: and is also selected whenever the batched tier is off.
        self.independent_cohorts = independent_cohorts and self.batched
        self.seed = seed
        self.devices: List[DeviceRuntime] = []
        self._by_name: Dict[str, DeviceRuntime] = {}
        #: Telemetry: world iterations that macro-stepped vs ticked.
        self.macro_steps = 0
        self.tick_steps = 0
        #: Telemetry: rounds taken by the independent scheduler.  With
        #: the bucketed scheduler this counts *actual frontier
        #: iterations* — each pop-the-frontier-bucket-and-advance
        #: round is one — so refusals and staggered horizons show up
        #: as extra rounds.  The legacy per-device loop
        #: (``independent_cohorts=False``) cannot observe its devices'
        #: internal iterations and still counts one round per barrier
        #: chunk (the historical approximation this counter had
        #: fleet-wide before the frontier scheduler).
        self.barrier_rounds = 0
        #: Telemetry, independent path only: device-spans solved
        #: through a stacked cohort call vs scalar (a singleton
        #: bucket/cohort, or a stacked drop-out whose scalar retry
        #: still macro-stepped).
        self.independent_cohort_spans = 0
        self.independent_scalar_spans = 0
        #: Telemetry: device-spans solved through a stacked cohort
        #: call (switch-bound spans included — the batched segment
        #: chain carries them in-batch), and devices that fell out of
        #: a cohort to the per-device path (topology divergence, span
        #: refusal, a genuinely unsupported shape, or a group too
        #: small to batch).  A fallback whose scalar solve still
        #: macro-stepped is additionally counted in
        #: :attr:`cohort_demotions`: the device left the stacked call
        #: but did not degrade to ticking.  Demotions now count only
        #: shapes the stacked chain cannot carry (residual-refusal
        #: regimes the scalar path also refuses land in ticking, and
        #: Padé-only propagators or failed batch certificates land
        #: here), never plain switch-bound cohorts.
        self.cohort_spans = 0
        self.cohort_ticks = 0
        self.cohort_fallbacks = 0
        self.cohort_demotions = 0
        #: Telemetry: horizon polls skipped thanks to a cached firm
        #: target vs polls actually executed.
        self.horizon_cache_hits = 0
        self.horizon_polls = 0
        # -- horizon cache (struct-of-arrays, rebuilt per run) --
        self._targets: Optional[np.ndarray] = None  # absolute tick; -1 stale
        self._firm: Optional[np.ndarray] = None
        self._executes: Optional[np.ndarray] = None
        # -- cohort signature interning --
        self._sig_tokens: Dict[tuple, int] = {}
        #: id(graph) -> (generation last seen, consecutive churn count);
        #: graphs that keep mutating topology are excluded from tick
        #: batching so they do not pay a plan recompile every tick.
        self._churn: Dict[int, Tuple[int, int]] = {}

    # -- fleet assembly ---------------------------------------------------------

    def add_device(self, name: Optional[str] = None,
                   **kwargs) -> CinderSystem:
        """Construct and enroll a :class:`CinderSystem`.

        Keyword arguments are forwarded to the ``CinderSystem``
        constructor; ``tick_s``, ``hosts`` and ``fast_forward``
        default to the world's, and ``seed`` defaults to a
        deterministic per-device derivation of the world seed.  A
        device may run on a *different* tick grid than the world's
        (``tick_s=...``): the fleet then advances barrier-to-barrier
        on the least common multiple of all tick periods.
        """
        kwargs.setdefault("tick_s", self.tick_s)
        kwargs.setdefault("hosts", self.hosts)
        kwargs.setdefault("fast_forward", self.fast_forward)
        kwargs.setdefault("seed", self.seed + 101 * len(self.devices))
        system = CinderSystem(**kwargs)
        return self.adopt(system, name=name)

    def adopt(self, runtime: DeviceRuntime,
              name: Optional[str] = None) -> DeviceRuntime:
        """Enroll an externally-assembled runtime (pluggable components).

        The runtime must not have ticked past the fleet — devices
        advance in lockstep (or barrier-aligned, on mixed tick grids)
        from the moment they join.
        """
        if abs(runtime.clock.now - self.now) > 1e-12:
            raise SimulationError(
                "a device must join the world at the fleet's current time "
                f"({runtime.clock.now} != {self.now})")
        name = name if name is not None else f"device{len(self.devices)}"
        if name in self._by_name:
            raise SimulationError(f"duplicate device name {name!r}")
        self.devices.append(runtime)
        self._by_name[name] = runtime
        self._targets = None  # horizon cache shape is stale
        return runtime

    def device(self, name: str) -> DeviceRuntime:
        """Look up an enrolled device by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SimulationError(f"no device named {name!r}")

    # -- shared time -------------------------------------------------------------

    @property
    def now(self) -> float:
        """The shared simulation time (0.0 for an empty world)."""
        return self.devices[0].clock.now if self.devices else 0.0

    @property
    def ticks(self) -> int:
        """Ticks taken so far on the shared grid (uniform fleets)."""
        return self.devices[0].clock.ticks if self.devices else 0

    @property
    def fast_forwarded_ticks(self) -> int:
        """Total ticks skipped across the fleet."""
        return sum(d.fast_forwarded_ticks for d in self.devices)

    @property
    def degraded_spans(self) -> int:
        """Degraded windows across the fleet: maximal tick runs whose
        spans a device's closed form refused (it ticked instead).

        Chained topologies used to land here wholesale (until the
        coupled span solver) and piecewise-linear switching states —
        mid-span clamps, binding capacities, debt repayment — after
        them (until the segmented engine, whose work shows up in
        :attr:`span_segments` instead); only residual unsupported
        regimes still degrade to ticking.
        """
        return sum(d.span_refusals for d in self.devices)

    @property
    def span_segments(self) -> int:
        """Switching-engine segments executed across the fleet."""
        return sum(d.span_segments for d in self.devices)

    def uniform_grid(self) -> bool:
        """True iff every device shares the world's tick size."""
        return all(d.clock.tick_s == self.tick_s for d in self.devices)

    def barrier_period(self) -> float:
        """The least common multiple of all device tick periods.

        Barrier instants for mixed-grid fleets must lie on every
        device's grid; the LCM of the (rationalized) tick periods is
        the finest such spacing.
        """
        fractions = [Fraction(d.clock.tick_s).limit_denominator(10 ** 9)
                     for d in self.devices]
        num = 1
        den = 0  # gcd identity
        for fr in fractions:
            num = num * fr.numerator // math.gcd(num, fr.numerator)
            den = math.gcd(den, fr.denominator)
        return float(Fraction(num, den))

    # -- the world loop -----------------------------------------------------------

    def _advance_once(self, deadline: float) -> None:
        """One reference iteration: global min-horizon or one tick each.

        The PR-2 loop, kept verbatim as the differential oracle for
        the batched scheduler (``batched=False`` selects it).
        """
        devices = self.devices
        ticks = min(d._ff_horizon_ticks(deadline) for d in devices)
        if ticks >= 2:
            for device in devices:
                if not device._ff_advance(ticks):
                    # The device's closed form refused this span (e.g.
                    # a clamping tap): tick it through the same ticks
                    # so the fleet stays aligned.
                    for _ in range(ticks):
                        device.step()
            self.macro_steps += 1
        else:
            for device in devices:
                device.step()
            self.tick_steps += 1

    # -- the batched scheduler ------------------------------------------------------

    def _reset_horizons(self) -> None:
        n = len(self.devices)
        if self._targets is None or len(self._targets) != n:
            self._targets = np.empty(n, dtype=np.int64)
            self._firm = np.zeros(n, dtype=bool)
            self._executes = np.zeros(n, dtype=bool)
        self._targets[:] = -1

    def _advance_once_batched(self, deadline: float) -> None:
        """One batched iteration: cached-horizon min, stacked advance."""
        devices = self.devices
        if self._targets is None or len(self._targets) != len(devices):
            # A device adopted mid-run (e.g. from a run_until
            # predicate) stales the cache shape; rebuild it.
            self._reset_horizons()
        targets = self._targets
        firm = self._firm
        executes = self._executes
        base = devices[0].clock.ticks
        for i, device in enumerate(devices):
            t = targets[i]
            if t >= 0 and firm[i] and (t - base >= 2 or executes[i]):
                # A firm target is exactly what a fresh poll would
                # report: beyond the amortization threshold it stays
                # cached, and a *due* step-requiring event means a
                # fresh poll would answer "tick now" — both resolved
                # without touching the device's sources.  A due power
                # boundary (e.g. the radio's ramp end) is the one case
                # that must re-poll: the next span opens right there.
                self.horizon_cache_hits += 1
                if t - base < 2:
                    targets[i] = base
                continue
            self.horizon_polls += 1
            ticks_i, firm_i, executes_i = device._ff_poll(deadline)
            if ticks_i == 0:
                targets[i] = base  # must tick now
                firm[i] = True
            else:
                targets[i] = base + ticks_i
                firm[i] = firm_i
                executes[i] = executes_i
        k = int(targets.min()) - base
        if k >= 2:
            self._fleet_macro(k)
            self.macro_steps += 1
            # Soft targets at or before the landing tick must be
            # re-derived; firm ones stay — the due-target shortcut
            # above answers "tick now" for them without a poll.
            landed = base + k
            stale = (targets <= landed) & ~firm
            targets[stale] = -1
        else:
            self._fleet_tick()
            self.tick_steps += 1
            targets[:] = -1

    def _cohort_token(self, plan) -> int:
        # The memo is world-qualified: tokens are interned per world,
        # so a plan cached by another World (a device adopted across
        # worlds) must not leak its foreign token here.
        cached = getattr(plan, "_cohort_token", None)
        if cached is not None and cached[0] is self:
            return cached[1]
        sig = plan.signature
        token = self._sig_tokens.setdefault(sig, len(self._sig_tokens))
        plan._cohort_token = (self, token)
        return token

    def _fleet_macro(self, ticks: int) -> None:
        """Advance every device ``ticks`` ticks, cohorts stacked.

        Mirrors the reference iteration exactly: each device's
        frozen-tap arbitration and span solve run with the same
        semantics, only grouped — the graph span of a cohort executes
        as one stacked call, then each member commits its non-graph
        effects (source replays, meter feed, clock) per device.  Any
        refusal ticks that device through the same span.
        """
        devices = self.devices
        span = ticks * devices[0].clock.tick_s
        groups: Dict[Tuple[int, float], List[Tuple[int, object]]] = {}
        refused: List[int] = []
        singles: List[Tuple[int, object]] = []
        for i, device in enumerate(devices):
            frozen = device._ff_begin()
            if frozen is None:
                refused.append(i)
                continue
            graph = device.graph
            plan = graph.span_plan_handle(frozen)
            policy = graph.decay_policy
            lam = policy.lam if policy.enabled else 0.0
            groups.setdefault((self._cohort_token(plan), lam),
                              []).append((i, plan))
        for members in groups.values():
            if len(members) < 2:
                singles.extend(members)
                continue
            tiers = [plan.span_tier for _, plan in members]
            results = _spansolver.execute_span_batch(tiers, span)
            for (i, plan), moved in zip(members, results):
                device = devices[i]
                if moved is None:
                    # Switch-bound devices solve inside the stacked
                    # call now (the batched segment chain), so a None
                    # here is a genuine drop-out: a shape the chain
                    # cannot carry (residual-refusal regime, Padé-only
                    # propagator, failed certificate).  Demote it to
                    # the scalar path, which may still macro-step it;
                    # ticking remains the fallback for residual
                    # refusals only.
                    self.cohort_fallbacks += 1
                    moved = plan.execute_span(span)
                    if moved is None:
                        device._ff_refuse()
                        refused.append(i)
                    else:
                        self.cohort_demotions += 1
                        plan.graph.note_span(span)
                        device._ff_commit(ticks)
                else:
                    plan.graph.note_span(span)
                    device._ff_commit(ticks)
                    self.cohort_spans += 1
        for i, plan in singles:
            device = devices[i]
            moved = plan.execute_span(span)
            if moved is None:
                device._ff_refuse()
                refused.append(i)
            else:
                plan.graph.note_span(span)
                device._ff_commit(ticks)
        for i in refused:
            device = devices[i]
            for _ in range(ticks):
                device.step()
            self._targets[i] = -1

    def _tick_plan_for(self, device: DeviceRuntime):
        """The device's compiled tick plan, or None if not batchable.

        Graphs whose topology keeps mutating would pay a full plan
        recompile every tick just to join a cohort; after a few
        consecutive stale generations the device is left on its plain
        per-device step.
        """
        graph = device.graph
        key = id(graph)
        plan = graph._plan
        generation = graph.generation
        if plan is not None and plan.generation == generation:
            self._churn[key] = (generation, 0)
            return plan
        seen, strikes = self._churn.get(key, (-1, 0))
        if seen != generation:
            strikes = strikes + 1 if seen >= 0 else 0
        elif strikes:
            # Stable since the last look: decay the penalty so a
            # device that stopped churning rejoins tick batching (for
            # small graphs nothing else ever compiles a plan, so the
            # exclusion would otherwise be permanent).
            strikes -= 1
        self._churn[key] = (generation, strikes)
        if strikes > 8:
            return None
        return graph._current_plan()

    def _fleet_tick(self, indices: Optional[List[int]] = None) -> None:
        """One tick for the given devices (default: all), cohorts stacked.

        The tick grid enters the cohort key (mixed-grid fleets reach
        here through the independent scheduler's stepper buckets;
        :func:`~repro.core.flowplan.execute_tick_batch` takes one
        shared ``dt``); on the lockstep path the grid is uniform, so
        the extra key component is inert.
        """
        devices = self.devices
        idxs = range(len(devices)) if indices is None else indices
        if len(idxs) < 2:
            for i in idxs:
                devices[i].step()
            return
        groups: Dict[Tuple[int, float, float],
                     List[Tuple[int, object]]] = {}
        for i in idxs:
            device = devices[i]
            plan = self._tick_plan_for(device)
            if plan is None:
                continue
            dt = device.clock.tick_s
            fraction = device.graph.decay_policy.fraction_for(dt)
            groups.setdefault((self._cohort_token(plan), fraction, dt),
                              []).append((i, plan))
        done: Dict[int, bool] = {}
        for members in groups.values():
            if len(members) < 2:
                continue
            plans = [plan for _, plan in members]
            dt = devices[members[0][0]].clock.tick_s
            results = _flowplan.execute_tick_batch(plans, dt)
            for (i, _), moved in zip(members, results):
                if moved is None:
                    self.cohort_fallbacks += 1
                else:
                    done[i] = True
                    self.cohort_ticks += 1
        for i in idxs:
            devices[i].step(graph_done=done.get(i, False))

    # -- the independent (frontier) scheduler -----------------------------------------

    def _commit_cohort(self, commits: List[int],
                       pending: List[int]) -> None:
        """Commit stacked macro-spans, meter feeds batched per cohort.

        Runs each member's :meth:`~repro.sim.engine.CinderSystem.
        _ff_commit` in its three phases — source replay + span power,
        meter feed, battery/scheduler/clock — with the middle phase
        grouped: members sharing the same ``(power, span)`` and a
        phase-aligned noiseless meter feed through one
        :meth:`~repro.energy.meter.PowerMeter.feed_cohort` call (the
        sample block is computed once; each follower replays only its
        own totalizer chain).  Per-device operation order is exactly
        the fused commit's, and devices share no state, so the
        reordering across devices is invisible — bit-identical to
        committing one device at a time.
        """
        devices = self.devices
        if len(commits) < 2:
            for i in commits:
                devices[i]._ff_commit(pending[i])
            return
        entries: List[Tuple[int, float]] = []
        feed_groups: Dict[Tuple[float, ...], List[int]] = {}
        for i in commits:
            device = devices[i]
            power = device._ff_commit_begin(pending[i])
            entries.append((i, power))
            meter = device.meter
            key = (power, pending[i] * device.clock.tick_s,
                   meter.sample_interval_s, meter.noise_fraction,
                   meter._window_time, meter._window_energy, meter._now)
            feed_groups.setdefault(key, []).append(i)
        for key, group in feed_groups.items():
            power, span, _, noise = key[:4]
            meters = [devices[i].meter for i in group]
            if len(meters) >= 2 and noise == 0.0:
                meters[0].feed_cohort(meters[1:], power, span)
            else:
                for meter in meters:
                    meter.feed(power, span)
        for i, power in entries:
            devices[i]._ff_commit_finish(pending[i], power)

    def _run_independent(self, chunk: float) -> None:
        """Advance every device to the next barrier, cohorts stacked.

        The event-time-bucketed frontier scheduler.  Each device's
        next action is decided by its *own* horizon poll — exactly the
        poll ``device.run(chunk)`` would make — and the fleet keeps a
        min-heap of the resulting landing instants:

        * **poll** — one :meth:`~repro.sim.engine.CinderSystem._ff_poll`
          per device per action, against that device's own deadline
          (``its clock.now + chunk``, bit-identical to ``device.run``).
          A macro answer (``ticks >= 2``) lands the device at
          ``(clock.ticks + ticks) * tick_s``; a must-tick answer lands
          it one tick ahead.  The pending tick count is cached with
          the heap entry — the device is untouched between push and
          pop (devices share no mutable state between barriers), so
          the cached answer is exactly what a fresh poll would return;
        * **bucket** — each round pops every entry sharing the minimum
          landing key.  Keys are quantized to integer nanoseconds
          (``round(landing * 1e9)``) so mixed tick grids whose landing
          instants agree physically but differ in float representation
          still share a bucket.  Quantization only affects *grouping*:
          the spans advanced come from each device's own tick count
          and tick size, never from the key;
        * **advance** — macro members are grouped by
          ``(cohort_token, lam)`` exactly as :meth:`_fleet_macro` and
          solved in one stacked
          :func:`~repro.core.spansolver.execute_span_batch` call with
          a **per-device span vector** (devices at different clocks
          share one eigendecomposition and one switch-location scan).
          Singleton groups solve scalar.  A stacked drop-out retries
          scalar (:attr:`cohort_fallbacks` / :attr:`cohort_demotions`,
          same as lockstep).  A refusal — frozen-tap arbitration or a
          genuinely unsupported regime — takes **one** normal step and
          re-polls, mirroring ``device.run``'s refusal fallthrough
          (the lockstep scheduler instead ticks a refused device
          through the whole fleet span; the independent path never
          did, and the frontier keeps that contract).  Must-tick
          members batch through :meth:`_fleet_tick` when two or more
          share a bucket;
        * **re-poll** — after its action each device re-enters the
          heap unless it has landed on the barrier
          (``now >= deadline - 1e-12``).

        Every device therefore executes the *same sequence* of polls,
        macro-commits and steps as the per-device loop — the frontier
        is a pure reordering across devices — which the parity suite
        pins bit-identically.  :attr:`barrier_rounds` counts each
        frontier round; :attr:`independent_cohort_spans` /
        :attr:`independent_scalar_spans` split the macro-solve counts.
        """
        devices = self.devices
        n = len(devices)
        deadlines = [d.clock.now + chunk for d in devices]
        pending = [0] * n
        #: Device's last macro poll was firm *and* executing: landing
        #: on it, a fresh poll provably answers "tick now" (the same
        #: shortcut the lockstep horizon cache takes), so the re-poll
        #: after the commit is skipped — the poll is read-only, so
        #: skipping a determined answer is invisible to the device.
        must_step = [False] * n
        skip_poll = [False] * n
        heap: List[Tuple[int, int]] = []

        def push(i: int) -> None:
            device = devices[i]
            clock = device.clock
            if clock.now >= deadlines[i] - 1e-12:
                return
            if skip_poll[i]:
                skip_poll[i] = False
                ticks = 0
                self.horizon_cache_hits += 1
            else:
                self.horizon_polls += 1
                ticks, firm, executes = device._ff_poll(deadlines[i])
                must_step[i] = ticks >= 2 and firm and executes
            pending[i] = ticks
            land = (clock.ticks + (ticks if ticks >= 2 else 1)) \
                * clock.tick_s
            heapq.heappush(heap, (round(land * 1e9), i))

        for i in range(n):
            push(i)
        while heap:
            key = heap[0][0]
            bucket: List[int] = []
            while heap and heap[0][0] == key:
                bucket.append(heapq.heappop(heap)[1])
            self.barrier_rounds += 1
            refused: List[int] = []
            steppers: List[int] = []
            groups: Dict[Tuple[int, float],
                         List[Tuple[int, object]]] = {}
            singles: List[Tuple[int, object]] = []
            for i in bucket:
                if pending[i] < 2:
                    steppers.append(i)
                    continue
                device = devices[i]
                frozen = device._ff_begin()
                if frozen is None:
                    refused.append(i)
                    continue
                graph = device.graph
                plan = graph.span_plan_handle(frozen)
                policy = graph.decay_policy
                lam = policy.lam if policy.enabled else 0.0
                groups.setdefault((self._cohort_token(plan), lam),
                                  []).append((i, plan))
            for members in groups.values():
                if len(members) < 2:
                    singles.extend(members)
                    continue
                tiers = [plan.span_tier for _, plan in members]
                spans = np.array([pending[i] * devices[i].clock.tick_s
                                  for i, _ in members])
                results = _spansolver.execute_span_batch(tiers, spans)
                commits: List[int] = []
                for (i, plan), moved in zip(members, results):
                    device = devices[i]
                    span_i = pending[i] * device.clock.tick_s
                    if moved is None:
                        self.cohort_fallbacks += 1
                        moved = plan.execute_span(span_i)
                        if moved is None:
                            device._ff_refuse()
                            refused.append(i)
                        else:
                            self.cohort_demotions += 1
                            self.independent_scalar_spans += 1
                            plan.graph.note_span(span_i)
                            commits.append(i)
                    else:
                        plan.graph.note_span(span_i)
                        commits.append(i)
                        self.cohort_spans += 1
                        self.independent_cohort_spans += 1
                        device.independent_cohort_spans += 1
                self._commit_cohort(commits, pending)
                for i in commits:
                    skip_poll[i] = must_step[i]
            for i, plan in singles:
                device = devices[i]
                span_i = pending[i] * device.clock.tick_s
                moved = plan.execute_span(span_i)
                if moved is None:
                    device._ff_refuse()
                    refused.append(i)
                else:
                    self.independent_scalar_spans += 1
                    plan.graph.note_span(span_i)
                    device._ff_commit(pending[i])
                    skip_poll[i] = must_step[i]
            if len(steppers) >= 2:
                self._fleet_tick(steppers)
            else:
                for i in steppers:
                    devices[i].step()
            for i in refused:
                devices[i].step()
            for i in bucket:
                push(i)

    # -- running -------------------------------------------------------------------

    def run(self, duration_s: float, barrier_s: Optional[float] = None,
            independent: Optional[bool] = None) -> None:
        """Advance the whole fleet by ``duration_s`` of simulated time.

        Two schedulers:

        * **lockstep** (``independent=False``; the default on a
          uniform tick grid) — the global min-horizon iteration,
          cohort-batched when :attr:`batched`.  Best when the fleet's
          events align (shared record cadences, synchronized
          workloads): one iteration serves everyone.
        * **independent** (``independent=True``; the default — and
          only option — on mixed tick grids) — each device
          macro-steps *on its own horizon* to the next shared clock
          barrier (every ``barrier_s``, default the whole duration),
          where the fleet re-synchronizes.  Devices are mutually
          independent between barriers (they share no state but the
          stateless remote-host universe), so per-device trajectories
          are sample-identical to lockstep — but one device's events
          no longer force a fleet-wide iteration, which is the
          difference between O(N · fleet-events) and O(N + own-events)
          at 1000 devices of staggered pollers.  With
          :attr:`independent_cohorts` (the default) the independent
          path runs the event-time-bucketed frontier scheduler
          (:meth:`_run_independent`): devices whose landing instants
          coincide solve their spans in one stacked cohort call, so
          staggered fleets keep the batch tier.
          ``independent_cohorts=False`` keeps the plain
          ``device.run(chunk)`` loop as the differential oracle.

        Barrier instants must land on every device's tick grid; the
        fleet's LCM tick period (:meth:`barrier_period`) is the
        finest admissible spacing.
        """
        if duration_s < 0:
            raise SimulationError("duration must be non-negative")
        if not self.devices:
            raise SimulationError("world has no devices")
        if independent is None:
            independent = not self.uniform_grid()
        if not independent and not self.uniform_grid():
            raise SimulationError(
                "lockstep needs a uniform tick grid; mixed-grid fleets "
                "advance independently between barriers")
        period = duration_s if barrier_s is None else barrier_s
        if barrier_s is not None and barrier_s <= 0:
            raise SimulationError("barrier must be positive")
        if independent:
            # Independent devices must *land* exactly on each barrier
            # or they desynchronize; lockstep fleets keep the
            # single-device semantics (an off-grid deadline simply
            # rounds up to the next whole tick for everyone at once).
            grid = self.barrier_period()
            if barrier_s is not None:
                ratio = barrier_s / grid
                if abs(ratio - round(ratio)) > 1e-9:
                    raise SimulationError(
                        f"barrier {barrier_s} s is not a multiple of the "
                        f"fleet's grid ({grid} s)")
            ratio = duration_s / grid
            if abs(ratio - round(ratio)) > 1e-9:
                raise SimulationError(
                    f"duration {duration_s} s does not land on the "
                    f"fleet's grid ({grid} s)")
        end = self.now + duration_s
        while self.now < end - 1e-12:
            chunk = min(period, end - self.now)
            if independent:
                if self.independent_cohorts:
                    self._run_independent(chunk)
                else:
                    for device in self.devices:
                        device.run(chunk)
                    # The legacy loop cannot observe its devices'
                    # internal iterations: one round per chunk (see
                    # the counter's docstring for the frontier
                    # scheduler's exact accounting).
                    self.barrier_rounds += 1
            else:
                deadline = self.now + chunk
                if self.batched:
                    self._reset_horizons()
                    while self.now < deadline - 1e-12:
                        self._advance_once_batched(deadline)
                else:
                    while self.now < deadline - 1e-12:
                        self._advance_once(deadline)

    def run_until(self, predicate: Callable[[], bool],
                  max_s: float = 36_000.0) -> float:
        """Run until ``predicate()`` or ``max_s``; returns elapsed time.

        The predicate is checked after every world iteration — every
        normal tick and every global event horizon.  Requires a
        uniform tick grid (mixed-grid fleets only synchronize at
        barriers, which would starve the predicate).
        """
        if not self.devices:
            raise SimulationError("world has no devices")
        if not self.uniform_grid():
            raise SimulationError(
                "run_until needs a uniform tick grid (mixed-grid fleets "
                "only observe shared state at barriers)")
        start = self.now
        deadline = start + max_s
        if self.batched:
            self._reset_horizons()
        while not predicate():
            if self.now - start >= max_s:
                raise SimulationError(
                    f"run_until exceeded {max_s} simulated seconds")
            if self.batched:
                self._advance_once_batched(deadline)
            else:
                self._advance_once(deadline)
        return self.now - start

    # -- checkpointing -----------------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialize this world to a digest-validated snapshot blob.

        Delegates to :func:`repro.sim.checkpoint.snapshot_world`: the
        returned bytes embed the fleet's bit-exact state digest and
        :meth:`restore` refuses to load a blob that fails it.  Worlds
        running live simulated programs (generators) cannot snapshot
        and raise :class:`~repro.errors.CheckpointError` — recover
        those by rebuild-and-replay instead (see
        :mod:`repro.sim.checkpoint`).
        """
        from .checkpoint import snapshot_world
        return snapshot_world(self)

    @staticmethod
    def restore(payload: bytes) -> "World":
        """Load a :meth:`snapshot` blob, re-validating its digest."""
        from .checkpoint import restore_snapshot
        return restore_snapshot(payload)

    # -- fleet reporting -----------------------------------------------------------

    def total_metered_energy(self) -> float:
        """Sum of every device meter's integrated energy (joules)."""
        return sum(d.meter.total_energy_joules for d in self.devices)

    def total_radio_activations(self) -> int:
        """Radio power-ups across the fleet."""
        return sum(d.radio.activation_count for d in self.devices)

    def conservation_error(self) -> float:
        """Worst absolute per-device graph conservation error."""
        if not self.devices:
            return 0.0
        return max(abs(d.graph.conservation_error()) for d in self.devices)
