"""Unit helpers for the Cinder reproduction.

Internally everything is SI floats: joules, watts, seconds, bytes.  The
paper, however, talks in milliwatts (taps), millijoules and microjoules
(reserve plots) and KiB/MiB (transfer plots).  These helpers keep call
sites readable and make the figure harnesses print the same units the
paper's axes use.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# constructors: readable literals -> SI floats
# ---------------------------------------------------------------------------


def watts(value: float) -> float:
    """Identity; exists for symmetry so call sites can be explicit."""
    return float(value)


def mW(value: float) -> float:
    """Milliwatts to watts."""
    return float(value) * 1e-3


def uW(value: float) -> float:
    """Microwatts to watts."""
    return float(value) * 1e-6


def joules(value: float) -> float:
    """Identity; exists for symmetry."""
    return float(value)


def mJ(value: float) -> float:
    """Millijoules to joules."""
    return float(value) * 1e-3


def uJ(value: float) -> float:
    """Microjoules to joules."""
    return float(value) * 1e-6


def kJ(value: float) -> float:
    """Kilojoules to joules."""
    return float(value) * 1e3


def seconds(value: float) -> float:
    """Identity; exists for symmetry."""
    return float(value)


def minutes(value: float) -> float:
    """Minutes to seconds."""
    return float(value) * 60.0


def hours(value: float) -> float:
    """Hours to seconds."""
    return float(value) * 3600.0


def KiB(value: float) -> int:
    """Kibibytes to bytes."""
    return int(round(float(value) * 1024))


def MiB(value: float) -> int:
    """Mebibytes to bytes."""
    return int(round(float(value) * 1024 * 1024))


# ---------------------------------------------------------------------------
# accessors: SI floats -> display units
# ---------------------------------------------------------------------------


def as_mW(value_watts: float) -> float:
    """Watts to milliwatts."""
    return value_watts * 1e3


def as_mJ(value_joules: float) -> float:
    """Joules to millijoules."""
    return value_joules * 1e3


def as_uJ(value_joules: float) -> float:
    """Joules to microjoules."""
    return value_joules * 1e6


def as_kJ(value_joules: float) -> float:
    """Joules to kilojoules."""
    return value_joules * 1e-3


def as_KiB(value_bytes: float) -> float:
    """Bytes to kibibytes."""
    return value_bytes / 1024.0


def as_MiB(value_bytes: float) -> float:
    """Bytes to mebibytes."""
    return value_bytes / (1024.0 * 1024.0)


# ---------------------------------------------------------------------------
# formatters
# ---------------------------------------------------------------------------


def fmt_power(value_watts: float) -> str:
    """Render a power as the most readable of W/mW/uW."""
    magnitude = abs(value_watts)
    if magnitude >= 1.0:
        return f"{value_watts:.3f} W"
    if magnitude >= 1e-3:
        return f"{value_watts * 1e3:.1f} mW"
    return f"{value_watts * 1e6:.1f} uW"


def fmt_energy(value_joules: float) -> str:
    """Render an energy as the most readable of kJ/J/mJ/uJ."""
    magnitude = abs(value_joules)
    if magnitude >= 1e3:
        return f"{value_joules * 1e-3:.2f} kJ"
    if magnitude >= 1.0:
        return f"{value_joules:.2f} J"
    if magnitude >= 1e-3:
        return f"{value_joules * 1e3:.1f} mJ"
    return f"{value_joules * 1e6:.1f} uJ"


def fmt_bytes(value_bytes: float) -> str:
    """Render a byte count as B/KiB/MiB."""
    magnitude = abs(value_bytes)
    if magnitude >= 1024 * 1024:
        return f"{value_bytes / (1024 * 1024):.2f} MiB"
    if magnitude >= 1024:
        return f"{value_bytes / 1024:.1f} KiB"
    return f"{int(value_bytes)} B"


def fmt_duration(value_seconds: float) -> str:
    """Render a duration as s or h:mm:ss for long spans."""
    if value_seconds < 120.0:
        return f"{value_seconds:.1f} s"
    total = int(round(value_seconds))
    hours_part, rem = divmod(total, 3600)
    minutes_part, seconds_part = divmod(rem, 60)
    if hours_part:
        return f"{hours_part}:{minutes_part:02d}:{seconds_part:02d}"
    return f"{minutes_part}m{seconds_part:02d}s"
