"""Synthetic remote endpoints.

The paper's experiments talk to real services (a UDP echo server, POP3
mail, RSS feeds, an image web server).  We substitute deterministic
synthetic servers that preserve what the experiments consume:
request/response byte counts and application payloads.  DESIGN.md §2
records this substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import NetworkError
from ..sim.process import NetRequest
from ..units import KiB, MiB


class RemoteServer:
    """Base: respond to a NetRequest with (bytes_in, payload)."""

    def respond(self, request: NetRequest) -> Tuple[int, Any]:
        """Default: honor the declared inbound byte count."""
        return max(0, request.bytes_in), None


class EchoServer(RemoteServer):
    """The §4.3 measurement target: returns what it was sent."""

    def respond(self, request: NetRequest) -> Tuple[int, Any]:
        return max(0, request.bytes_out), request.payload


@dataclass
class MailServer(RemoteServer):
    """POP3-style: a poll returns queued messages.

    ``payload`` may carry ``{'expect_messages': n}`` to override the
    default queue depth.
    """

    message_bytes: int = KiB(10)
    default_queue_depth: int = 3

    def respond(self, request: NetRequest) -> Tuple[int, Any]:
        depth = self.default_queue_depth
        if isinstance(request.payload, dict):
            depth = int(request.payload.get("expect_messages", depth))
        if request.bytes_in > 0:
            return request.bytes_in, {"messages": depth}
        return depth * self.message_bytes, {"messages": depth}


@dataclass
class FeedServer(RemoteServer):
    """RSS-style: a poll returns the current feed document."""

    feed_bytes: int = KiB(60)

    def respond(self, request: NetRequest) -> Tuple[int, Any]:
        if request.bytes_in > 0:
            return request.bytes_in, {"items": 20}
        return self.feed_bytes, {"items": 20}


@dataclass
class ImageServer(RemoteServer):
    """Interlaced-PNG gallery (paper §5.3).

    Interlacing lets a client stop after a fraction of the file and
    still decode a complete — lower-quality — image.  ``payload``
    carries ``{'image': i, 'fraction': f}``; the response size is
    ``ceil(f * full_bytes)`` and the payload reports the achieved
    quality (equal to the fraction fetched).
    """

    full_image_bytes: int = KiB(700)
    #: The smallest useful interlace pass (~1/64 of the data).
    min_fraction: float = 1.0 / 64.0

    def respond(self, request: NetRequest) -> Tuple[int, Any]:
        fraction = 1.0
        image = None
        if isinstance(request.payload, dict):
            fraction = float(request.payload.get("fraction", 1.0))
            image = request.payload.get("image")
        fraction = min(1.0, max(self.min_fraction, fraction))
        nbytes = int(math.ceil(fraction * self.full_image_bytes))
        return nbytes, {"image": image, "quality": fraction,
                        "bytes": nbytes}


class RemoteHosts:
    """Destination-tag registry consulted by netd."""

    def __init__(self, servers: Optional[Dict[str, RemoteServer]] = None
                 ) -> None:
        self._servers: Dict[str, RemoteServer] = dict(servers or {})

    @classmethod
    def default(cls) -> "RemoteHosts":
        """The standard experiment universe."""
        return cls({
            "echo": EchoServer(),
            "mail": MailServer(),
            "rss": FeedServer(),
            "images": ImageServer(),
        })

    def register(self, destination: str, server: RemoteServer) -> None:
        """Bind (or replace) a destination tag."""
        self._servers[destination] = server

    def lookup(self, destination: str) -> RemoteServer:
        """Resolve a destination tag (raises NetworkError if unknown)."""
        try:
            return self._servers[destination]
        except KeyError:
            raise NetworkError(f"unknown destination {destination!r}")

    def destinations(self) -> Tuple[str, ...]:
        """Known destination tags, sorted."""
        return tuple(sorted(self._servers))
