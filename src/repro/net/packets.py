"""Packets and flows: the §4.3 measurement workloads.

Figure 3 measures "10 second flows across six different packet rates
and three packet sizes" against a UDP echo server; Figure 4 sends "one
UDP packet approximately every 40 seconds" to exercise the activation
cycle.  These helpers describe such workloads and evaluate their
energy using the radio model, both analytically (grid sweeps) and
through the full device state machine (trace synthesis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..energy.radio_model import RadioPowerParams
from ..errors import NetworkError

#: The Figure 3 grid.
FIG3_PACKET_RATES = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0)
FIG3_PACKET_SIZES = (1, 750, 1500)
FIG3_FLOW_SECONDS = 10.0


@dataclass(frozen=True)
class Packet:
    """A single datagram."""

    nbytes: int
    send_time: float = 0.0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise NetworkError("packet size must be non-negative")


@dataclass(frozen=True)
class Flow:
    """A constant-rate packet stream (one Figure 3 cell)."""

    packets_per_s: float
    bytes_per_packet: int
    duration_s: float = FIG3_FLOW_SECONDS

    def __post_init__(self) -> None:
        if self.packets_per_s < 0 or self.duration_s < 0:
            raise NetworkError("flow parameters must be non-negative")
        if self.bytes_per_packet < 0:
            raise NetworkError("packet size must be non-negative")

    @property
    def packet_count(self) -> int:
        return int(round(self.packets_per_s * self.duration_s))

    @property
    def total_bytes(self) -> int:
        return self.packet_count * self.bytes_per_packet

    def packets(self) -> List[Packet]:
        """The concrete packet train."""
        if self.packets_per_s == 0:
            return []
        interval = 1.0 / self.packets_per_s
        return [Packet(self.bytes_per_packet, i * interval)
                for i in range(self.packet_count)]

    def energy(self, params: RadioPowerParams,
               rng: Optional[np.random.Generator] = None) -> float:
        """Energy over baseline of this flow run in isolation."""
        return params.flow_energy(self.packets_per_s, self.bytes_per_packet,
                                  self.duration_s, rng=rng)


def echo_flow_grid(
    params: RadioPowerParams,
    rates: Iterable[float] = FIG3_PACKET_RATES,
    sizes: Iterable[int] = FIG3_PACKET_SIZES,
    duration_s: float = FIG3_FLOW_SECONDS,
    seed: Optional[int] = 1,
) -> List[Tuple[float, int, float]]:
    """Evaluate the Figure 3 grid; returns (rate, size, joules) rows.

    Each UDP packet is echoed, so the radio carries twice the payload —
    the echo traffic is why even the 1 B/packet line rises with rate.
    """
    rng = None if seed is None else np.random.default_rng(seed)
    rows: List[Tuple[float, int, float]] = []
    for size in sizes:
        for rate in rates:
            # Echo doubles packets and bytes on the air.
            flow = Flow(packets_per_s=2 * rate, bytes_per_packet=size,
                        duration_s=duration_s)
            energy = params.flow_energy(flow.packets_per_s,
                                        flow.bytes_per_packet,
                                        duration_s, rng=rng)
            rows.append((rate, size, energy))
    return rows


def grid_summary(rows: List[Tuple[float, int, float]]
                 ) -> Tuple[float, float, float]:
    """(mean, min, max) joules over a Figure 3 grid."""
    energies = [energy for _, _, energy in rows]
    if not energies:
        raise NetworkError("empty grid")
    return (float(np.mean(energies)), float(np.min(energies)),
            float(np.max(energies)))
