"""The network stack: radio device, netd, packets, remote endpoints.

The radio is the platform's most non-linear energy consumer (§4.3);
netd (§5.5) turns Cinder's reserves and taps into coordinated,
amortized use of it.
"""

from .netd import (DEFAULT_ACTIVATION_MARGIN, NetdStats, NetworkDaemon,
                   OpState, PendingOp)
from .packets import (FIG3_FLOW_SECONDS, FIG3_PACKET_RATES,
                      FIG3_PACKET_SIZES, Flow, Packet, echo_flow_grid,
                      grid_summary)
from .radio import RadioDevice, RadioState, Transfer
from .remote import (EchoServer, FeedServer, ImageServer, MailServer,
                     RemoteHosts, RemoteServer)
from .sockets import MTU_BYTES, Socket

__all__ = [
    "DEFAULT_ACTIVATION_MARGIN", "NetdStats", "NetworkDaemon", "OpState",
    "PendingOp", "FIG3_FLOW_SECONDS", "FIG3_PACKET_RATES",
    "FIG3_PACKET_SIZES", "Flow", "Packet", "echo_flow_grid", "grid_summary",
    "RadioDevice", "RadioState", "Transfer", "EchoServer", "FeedServer",
    "ImageServer", "MailServer", "RemoteHosts", "RemoteServer", "MTU_BYTES",
    "Socket",
]
