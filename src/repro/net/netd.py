"""netd: Cinder's cooperative network stack (paper §5.5).

netd owns the radio.  Applications reach it through a gate, so the
calling thread itself executes netd's admission logic and is billed
for it (§5.5.1).  The daemon adds two things over a plain stack:

* **Gating** — a network operation proceeds only when it is paid for.
  If the radio is idle, the bill is the activation cost; netd demands
  **125 %** of it ("essentially mandating that applications have extra
  energy to transmit and receive subsequent packets" — Figure 14).
* **Pooling** — threads that cannot afford the bill alone block and
  contribute "the energy acquired by their taps to the netd reserve"
  until the pool covers it; then the radio turns on once and *all*
  waiting threads proceed together (Figure 13b's synchronization).

The netd pool reserve is decay-exempt: "the process is trusted not to
hoard energy and, by construction, only stores enough energy to
activate the radio before being expended".

Billing detail: outbound data cost is prepaid at grant time; inbound
bytes declared in the request are prepaid too, but a server may
deliver *undeclared* extra bytes, which are debited to the caller's
reserve after the fact — "threads can debit their own reserves up to
or into debt even if the cost can only be determined after-the-fact"
(§5.5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from ..core.accounting import ConsumptionLedger
from ..core.graph import ResourceGraph
from ..core.reserve import Reserve
from ..errors import NetworkError
from ..kernel.gate import Gate
from ..kernel.kernel import Kernel
from ..kernel.thread_obj import Thread, ThreadState
from ..sim.process import NetReply, NetRequest
from .radio import RadioDevice, Transfer
from .remote import RemoteHosts

#: netd demands this multiple of the activation cost before powering
#: the radio from idle (Figure 14: "netd requires 125% of this level").
DEFAULT_ACTIVATION_MARGIN = 1.25


class OpState(Enum):
    """Lifecycle of one submitted network operation."""

    WAITING_ENERGY = "waiting-energy"
    TRANSFERRING = "transferring"
    DONE = "done"


@dataclass
class PendingOp:
    """One network operation moving through netd."""

    thread: Thread
    request: NetRequest
    owner: str
    submitted_at: float
    state: OpState = OpState.WAITING_ENERGY
    transfer: Optional[Transfer] = None
    reply: Optional[NetReply] = None
    billed_joules: float = 0.0
    contributed_joules: float = 0.0
    response_bytes: int = 0
    response_payload: Any = None


@dataclass
class NetdStats:
    """Counters the Table 1 harness reads."""

    operations: int = 0
    radio_activations_requested: int = 0
    total_billed_joules: float = 0.0
    total_pool_contributions: float = 0.0
    total_wait_seconds: float = 0.0
    debt_debits: int = 0


class NetworkDaemon:
    """The netd daemon: admission control plus the radio data path."""

    def __init__(
        self,
        graph: ResourceGraph,
        radio: RadioDevice,
        clock: Callable[[], float],
        hosts: Optional[RemoteHosts] = None,
        activation_margin: float = DEFAULT_ACTIVATION_MARGIN,
        cooperative: bool = True,
        unrestricted: bool = False,
        ledger: Optional[ConsumptionLedger] = None,
    ) -> None:
        if activation_margin < 1.0:
            raise NetworkError("activation margin must be >= 1")
        self.graph = graph
        self.radio = radio
        self._clock = clock
        self.hosts = hosts if hosts is not None else RemoteHosts.default()
        self.activation_margin = activation_margin
        #: Pooling enabled (Figure 13b) vs. strictly per-caller budgets.
        self.cooperative = cooperative
        #: The Figure 13a baseline: no gating, no billing.
        self.unrestricted = unrestricted
        self.ledger = ledger
        #: The shared radio power-up pool (decay-exempt; §5.5.2).
        self.pool: Reserve = graph.create_reserve(
            name="netd.pool", decay_exempt=True)
        self._queue: List[PendingOp] = []
        self.stats = NetdStats()

    # -- gate plumbing -----------------------------------------------------------

    def make_gate(self, kernel: Kernel, name: str = "netd.send") -> Gate:
        """Expose :meth:`submit` as a HiStar gate.

        The caller's thread runs this service, so the submission cost
        (and everything netd debits) lands on the caller's active
        reserve — §5.5.1's accounting property.
        """
        def service(thread: Thread, request: Any) -> PendingOp:
            if not isinstance(request, NetRequest):
                raise NetworkError("netd.send expects a NetRequest")
            return self.submit(thread, request, owner=thread.name)
        return kernel.create_gate(service, name=name)

    # -- submission ---------------------------------------------------------------

    def submit(self, thread: Thread, request: NetRequest,
               owner: str = "") -> PendingOp:
        """Enqueue an operation; the thread blocks until it completes."""
        now = self._clock()
        op = PendingOp(thread=thread, request=request,
                       owner=owner or thread.name, submitted_at=now)
        # Resolve the remote end once, so costs are known where possible.
        server = self.hosts.lookup(request.destination)
        op.response_bytes, op.response_payload = server.respond(request)
        self._queue.append(op)
        self.stats.operations += 1
        thread.state = ThreadState.BLOCKED
        self._pump(now)
        return op

    # -- cost model ------------------------------------------------------------------

    def _declared_data_cost(self, request: NetRequest) -> float:
        """Prepaid portion: outbound plus declared inbound bytes."""
        params = self.radio.params
        declared = max(0, request.bytes_out) + max(0, request.bytes_in)
        return (params.per_byte_joules * declared
                + params.per_packet_joules * request.total_packets())

    def _undeclared_recv_cost(self, op: PendingOp) -> float:
        """Post-paid portion: inbound bytes beyond what was declared."""
        extra = max(0, op.response_bytes - max(0, op.request.bytes_in))
        return self.radio.params.per_byte_joules * extra

    def required_energy(self, waiting: List[PendingOp], now: float) -> float:
        """Total the pool must hold before the batch may proceed."""
        total = sum(self._declared_data_cost(op.request) for op in waiting)
        if self.radio.would_be_idle(now):
            total += (self.activation_margin
                      * self.radio.params.activation_cost)
        else:
            total += self.radio.params.marginal_active_cost(
                self.radio.seconds_since_activity(now))
        return total

    # -- the admission pump --------------------------------------------------------------

    def step(self, now: float) -> None:
        """Advance blocked and in-flight operations (engine calls this)."""
        self._complete_transfers(now)
        self._pump(now)

    def _complete_transfers(self, now: float) -> None:
        for op in [o for o in self._queue
                   if o.state is OpState.TRANSFERRING]:
            assert op.transfer is not None
            if op.transfer.end <= now:
                self._finish(op, now)

    def _pump(self, now: float) -> None:
        waiting = [o for o in self._queue
                   if o.state is OpState.WAITING_ENERGY]
        if not waiting:
            return
        if self.unrestricted:
            for op in waiting:
                self._start_transfer(op, now)
            return
        if not self.cooperative:
            # Per-caller budgets: each op must afford its own bill.
            for op in waiting:
                self._try_start_alone(op, now)
            return
        activation_needed = (self.radio.would_be_idle(now)
                             and self.radio.params.activation_cost > 0.0)
        if activation_needed:
            self._pump_pooled(waiting, now)
        else:
            # Radio already up (or this platform has no activation
            # spike): no power-up to amortize, so each caller simply
            # gates on its own reserve — blocked callers keep their
            # level, which is the §5.3 adaptation signal.
            for op in waiting:
                self._try_start_individually(op, now)

    def _pump_pooled(self, waiting: List[PendingOp], now: float) -> None:
        """The §5.5.2 radio power-up pooling path."""
        required = self.required_energy(waiting, now)
        available = self.pool.level + sum(
            max(0.0, op.thread.active_reserve.level) for op in waiting)
        if available + 1e-12 >= required:
            # Affordable now: draw only the shortfall from the callers,
            # leaving their surplus in their own reserves.
            shortfall = max(0.0, required - self.pool.level)
            for op in waiting:
                if shortfall <= 0.0:
                    break
                take = min(shortfall,
                           max(0.0, op.thread.active_reserve.level))
                moved = op.thread.active_reserve.transfer_to(self.pool,
                                                             take)
                op.contributed_joules += moved
                self.stats.total_pool_contributions += moved
                shortfall -= moved
        else:
            # Not yet affordable: blocked callers contribute everything
            # their taps have acquired and keep sleeping (§5.5.2).
            for op in waiting:
                self._contribute(op)
        if self.pool.level + 1e-12 >= required:
            bill = self._state_cost(now) + sum(
                self._declared_data_cost(op.request) for op in waiting)
            self.pool.consume(min(bill, self.pool.level))
            self._record(waiting, bill)
            self.stats.radio_activations_requested += 1
            for op in waiting:
                op.billed_joules += bill / len(waiting)
                self._start_transfer(op, now)

    def _try_start_individually(self, op: PendingOp, now: float) -> None:
        """Gate one op on its own reserve (plus any pool surplus)."""
        reserve = op.thread.active_reserve
        bill = self._state_cost(now) + self._declared_data_cost(op.request)
        if self.pool.level + max(0.0, reserve.level) + 1e-12 < bill:
            return
        shortfall = max(0.0, bill - self.pool.level)
        if shortfall > 0.0:
            moved = reserve.transfer_to(self.pool, shortfall)
            op.contributed_joules += moved
            self.stats.total_pool_contributions += moved
        self.pool.consume(min(bill, self.pool.level))
        op.billed_joules += bill
        self._record([op], bill)
        self._start_transfer(op, now)

    def _state_cost(self, now: float) -> float:
        """The actual (margin-free) radio state cost to debit."""
        if self.radio.would_be_idle(now):
            return self.radio.params.activation_cost
        return self.radio.params.marginal_active_cost(
            self.radio.seconds_since_activity(now))

    def _contribute(self, op: PendingOp) -> None:
        """Drain a blocked caller's reserve into the pool (§5.5.2)."""
        reserve = op.thread.active_reserve
        level = reserve.level
        if level > 0.0:
            moved = reserve.transfer_to(self.pool, level)
            op.contributed_joules += moved
            self.stats.total_pool_contributions += moved

    def _try_start_alone(self, op: PendingOp, now: float) -> None:
        reserve = op.thread.active_reserve
        bill = self._state_cost(now) + self._declared_data_cost(op.request)
        required = bill
        if self.radio.would_be_idle(now):
            required = (self.activation_margin
                        * self.radio.params.activation_cost
                        + self._declared_data_cost(op.request))
        if reserve.level + 1e-12 >= required:
            reserve.consume(min(bill, reserve.level))
            op.billed_joules += bill
            self._record([op], bill)
            if self.radio.would_be_idle(now):
                self.stats.radio_activations_requested += 1
            self._start_transfer(op, now)

    # -- transfer lifecycle -----------------------------------------------------------------

    def _start_transfer(self, op: PendingOp, now: float) -> None:
        nbytes = (max(0, op.request.bytes_out)
                  + max(op.response_bytes, max(0, op.request.bytes_in)))
        op.transfer = self.radio.begin_transfer(
            now, nbytes, op.request.total_packets(), owner=op.owner)
        op.state = OpState.TRANSFERRING
        self.stats.total_wait_seconds += now - op.submitted_at

    def _finish(self, op: PendingOp, now: float) -> None:
        wait = (op.transfer.start - op.submitted_at
                if op.transfer is not None else 0.0)
        if not self.unrestricted:
            extra = self._undeclared_recv_cost(op)
            if extra > 0.0:
                # After-the-fact debit, possibly into debt (§5.5.2).
                op.thread.active_reserve.consume(extra, allow_debt=True)
                op.billed_joules += extra
                self.stats.debt_debits += 1
                self._record([op], extra)
        op.reply = NetReply(
            bytes_out=op.request.bytes_out,
            bytes_in=max(op.response_bytes, max(0, op.request.bytes_in)),
            billed_joules=op.billed_joules,
            wait_seconds=max(0.0, wait),
            response=op.response_payload,
        )
        op.state = OpState.DONE
        self._queue.remove(op)

    def _record(self, ops: List[PendingOp], joules: float) -> None:
        self.stats.total_billed_joules += joules
        if self.ledger is not None and ops:
            share = joules / len(ops)
            for op in ops:
                self.ledger.record(op.owner, "radio", share)

    # -- engine integration --------------------------------------------------------------------

    def reply_for(self, op: PendingOp) -> Optional[NetReply]:
        """The reply if ``op`` completed, else None (engine polls this)."""
        return op.reply

    @property
    def waiting_count(self) -> int:
        """Blocked operations (the Figure 13b queue)."""
        return sum(1 for o in self._queue
                   if o.state is OpState.WAITING_ENERGY)

    @property
    def pending_count(self) -> int:
        """All queued operations, blocked or in flight.

        The engine's idle fast-forward refuses to skip ticks while
        this is non-zero: blocked operations accrue pool energy from
        the per-tick flow pump, and in-flight transfers complete on a
        tick boundary.
        """
        return len(self._queue)
