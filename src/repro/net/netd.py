"""netd: Cinder's cooperative network stack (paper §5.5).

netd owns the radio.  Applications reach it through a gate, so the
calling thread itself executes netd's admission logic and is billed
for it (§5.5.1).  The daemon adds two things over a plain stack:

* **Gating** — a network operation proceeds only when it is paid for.
  If the radio is idle, the bill is the activation cost; netd demands
  **125 %** of it ("essentially mandating that applications have extra
  energy to transmit and receive subsequent packets" — Figure 14).
* **Pooling** — threads that cannot afford the bill alone block and
  contribute "the energy acquired by their taps to the netd reserve"
  until the pool covers it; then the radio turns on once and *all*
  waiting threads proceed together (Figure 13b's synchronization).

The netd pool reserve is decay-exempt: "the process is trusted not to
hoard energy and, by construction, only stores enough energy to
activate the radio before being expended".

Billing detail: outbound data cost is prepaid at grant time; inbound
bytes declared in the request are prepaid too, but a server may
deliver *undeclared* extra bytes, which are debited to the caller's
reserve after the fact — "threads can debit their own reserves up to
or into debt even if the cost can only be determined after-the-fact"
(§5.5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, List, Optional, Tuple

from ..core.accounting import ConsumptionLedger
from ..core.graph import ResourceGraph
from ..core.pooling import (PooledAccrual, analyze_pooled_accrual,
                            replay_pooled_accrual, replay_reserve_accrual)
from ..core.reserve import Reserve
from ..core.tap import Tap
from ..errors import NetworkError
from ..kernel.gate import Gate
from ..kernel.kernel import Kernel
from ..kernel.thread_obj import Thread, ThreadState
from ..sim.process import NetReply, NetRequest
from .radio import RadioDevice, Transfer
from .remote import RemoteHosts

#: netd demands this multiple of the activation cost before powering
#: the radio from idle (Figure 14: "netd requires 125% of this level").
DEFAULT_ACTIVATION_MARGIN = 1.25


class OpState(Enum):
    """Lifecycle of one submitted network operation."""

    WAITING_ENERGY = "waiting-energy"
    TRANSFERRING = "transferring"
    DONE = "done"


@dataclass
class PendingOp:
    """One network operation moving through netd."""

    thread: Thread
    request: NetRequest
    owner: str
    submitted_at: float
    state: OpState = OpState.WAITING_ENERGY
    transfer: Optional[Transfer] = None
    reply: Optional[NetReply] = None
    billed_joules: float = 0.0
    contributed_joules: float = 0.0
    response_bytes: int = 0
    response_payload: Any = None


@dataclass
class _SpanPlan:
    """Closed-form description of one blocked-wait accrual regime.

    Two regimes have a closed form.  ``mode="pooled"`` is the §5.5.2
    radio power-up pool: every queued operation is blocked on
    ``required_energy`` and each tick drains every waiter's accrual
    into the pool.  ``mode="active"`` is the §5.5.1 individual gating
    path — the radio is already active, so each caller gates on its
    *own* reserve against the marginal active cost (which grows at
    plateau power as the radio idles down).  In both, every waiter's
    reserve follows the canonical ``powered_reserve`` shape — the
    per-tick arithmetic and the validity analysis are the shared
    :mod:`repro.core.pooling` machinery (which also admits chained
    feeds through const-only junction reserves).  Under either regime
    each engine tick repeats the same float arithmetic, so the
    trajectory — and the exact tick an operation becomes affordable —
    can be replayed without running the engine.

    The plan is *persistent*: it stays valid across ticks and spans
    until its revalidation key (topology generation, decay policy,
    queue membership) or its cheap state invariants (ops still
    blocked, pooled waiters still drained to zero, radio still in the
    analyzed power state, feed budgets still healthy) stop holding —
    re-running the full graph-walking analysis every tick was a
    measurable cost at fleet scale.
    """

    #: Ops blocked waiting for energy, in queue order.
    waiting: List[PendingOp]
    #: The pool level the batch must reach (pooled mode; 0.0 active).
    required: float
    #: The shared per-tick arithmetic (entries, addends, budgets).
    accrual: PooledAccrual
    #: "pooled" (§5.5.2 power-up pool) or "active" (§5.5.1 gating).
    mode: str = "pooled"
    #: Revalidation key: (generation, decay enabled, lam, queue ids).
    key: tuple = ()
    #: Active mode: (op, reserve, declared data cost) in queue order.
    gates: Optional[List[tuple]] = None


@dataclass
class NetdStats:
    """Counters the Table 1 harness reads."""

    operations: int = 0
    radio_activations_requested: int = 0
    total_billed_joules: float = 0.0
    total_pool_contributions: float = 0.0
    total_wait_seconds: float = 0.0
    debt_debits: int = 0


class _GateService:
    """The ``netd.send`` gate body, as a picklable callable.

    A local function would pin the whole device graph as unpicklable
    (gates live on the kernel), which the barrier checkpoints in
    :mod:`repro.sim.checkpoint` cannot afford.
    """

    __slots__ = ("netd",)

    def __init__(self, netd: "NetworkDaemon") -> None:
        self.netd = netd

    def __call__(self, thread: Thread, request: Any) -> PendingOp:
        if not isinstance(request, NetRequest):
            raise NetworkError("netd.send expects a NetRequest")
        return self.netd.submit(thread, request, owner=thread.name)


class NetworkDaemon:
    """The netd daemon: admission control plus the radio data path."""

    #: EventSource protocol: display name for horizon diagnostics.
    name = "netd"

    def __init__(
        self,
        graph: ResourceGraph,
        radio: RadioDevice,
        clock: Callable[[], float],
        hosts: Optional[RemoteHosts] = None,
        activation_margin: float = DEFAULT_ACTIVATION_MARGIN,
        cooperative: bool = True,
        unrestricted: bool = False,
        ledger: Optional[ConsumptionLedger] = None,
        tick_s: Optional[float] = None,
        ticks: Optional[Callable[[], int]] = None,
    ) -> None:
        if activation_margin < 1.0:
            raise NetworkError("activation margin must be >= 1")
        self.graph = graph
        self.radio = radio
        self._clock = clock
        #: Engine tick size and tick counter, wired by the runtime so
        #: the daemon can act as an event source (closed-form pooled
        #: accrual happens on the engine's exact tick grid).
        self.tick_s = tick_s
        self._ticks = ticks
        self.hosts = hosts if hosts is not None else RemoteHosts.default()
        self.activation_margin = activation_margin
        #: Pooling enabled (Figure 13b) vs. strictly per-caller budgets.
        self.cooperative = cooperative
        #: The Figure 13a baseline: no gating, no billing.
        self.unrestricted = unrestricted
        self.ledger = ledger
        #: The shared radio power-up pool (decay-exempt; §5.5.2).
        self.pool: Reserve = graph.create_reserve(
            name="netd.pool", decay_exempt=True)
        self._queue: List[PendingOp] = []
        self.stats = NetdStats()
        #: (now, plan-or-None) — one closed-form analysis per tick.
        self._span_cache: Optional[Tuple[float, Optional[_SpanPlan]]] = None
        #: The persistent regime analysis (revalidated, not recomputed,
        #: while its key and invariants hold — see :class:`_SpanPlan`).
        self._regime: Optional[_SpanPlan] = None
        #: EventSource protocol: whether the last ``next_event`` answer
        #: was an exact instant (crossing tick) or a conservative
        #: checkpoint a fleet scheduler must not cache.
        self.horizon_firm = True

    # -- gate plumbing -----------------------------------------------------------

    def make_gate(self, kernel: Kernel, name: str = "netd.send") -> Gate:
        """Expose :meth:`submit` as a HiStar gate.

        The caller's thread runs this service, so the submission cost
        (and everything netd debits) lands on the caller's active
        reserve — §5.5.1's accounting property.
        """
        return kernel.create_gate(_GateService(self), name=name)

    # -- submission ---------------------------------------------------------------

    def submit(self, thread: Thread, request: NetRequest,
               owner: str = "") -> PendingOp:
        """Enqueue an operation; the thread blocks until it completes."""
        now = self._clock()
        op = PendingOp(thread=thread, request=request,
                       owner=owner or thread.name, submitted_at=now)
        # Resolve the remote end once, so costs are known where possible.
        server = self.hosts.lookup(request.destination)
        op.response_bytes, op.response_payload = server.respond(request)
        self._queue.append(op)
        self.stats.operations += 1
        thread.state = ThreadState.BLOCKED
        self._span_cache = None  # the closed-form analysis is stale
        self._pump(now)
        return op

    # -- cost model ------------------------------------------------------------------

    def _declared_data_cost(self, request: NetRequest) -> float:
        """Prepaid portion: outbound plus declared inbound bytes."""
        params = self.radio.params
        declared = max(0, request.bytes_out) + max(0, request.bytes_in)
        return (params.per_byte_joules * declared
                + params.per_packet_joules * request.total_packets())

    def _undeclared_recv_cost(self, op: PendingOp) -> float:
        """Post-paid portion: inbound bytes beyond what was declared."""
        extra = max(0, op.response_bytes - max(0, op.request.bytes_in))
        return self.radio.params.per_byte_joules * extra

    def required_energy(self, waiting: List[PendingOp], now: float) -> float:
        """Total the pool must hold before the batch may proceed."""
        total = sum(self._declared_data_cost(op.request) for op in waiting)
        if self.radio.would_be_idle(now):
            total += (self.activation_margin
                      * self.radio.params.activation_cost)
        else:
            total += self.radio.params.marginal_active_cost(
                self.radio.seconds_since_activity(now))
        return total

    # -- the admission pump --------------------------------------------------------------

    def step(self, now: float) -> None:
        """Advance blocked and in-flight operations (engine calls this)."""
        self._span_cache = None  # per-tick execution mutates the regime
        if not self._queue:
            return  # idle daemon: nothing to complete or pump
        self._complete_transfers(now)
        self._pump(now)

    def _complete_transfers(self, now: float) -> None:
        for op in self._queue:
            if op.state is not OpState.TRANSFERRING:
                continue
            break
        else:
            return  # the common blocked-wait tick: nothing in flight
        for op in [o for o in self._queue
                   if o.state is OpState.TRANSFERRING]:
            assert op.transfer is not None
            if op.transfer.end <= now:
                self._finish(op, now)

    def _pump(self, now: float) -> None:
        waiting = [o for o in self._queue
                   if o.state is OpState.WAITING_ENERGY]
        if not waiting:
            return
        if self.unrestricted:
            for op in waiting:
                self._start_transfer(op, now)
            return
        if not self.cooperative:
            # Per-caller budgets: each op must afford its own bill.
            for op in waiting:
                self._try_start_alone(op, now)
            return
        activation_needed = (self.radio.would_be_idle(now)
                             and self.radio.params.activation_cost > 0.0)
        if activation_needed:
            self._pump_pooled(waiting, now)
        else:
            # Radio already up (or this platform has no activation
            # spike): no power-up to amortize, so each caller simply
            # gates on its own reserve — blocked callers keep their
            # level, which is the §5.3 adaptation signal.
            for op in waiting:
                self._try_start_individually(op, now)

    def _pump_pooled(self, waiting: List[PendingOp], now: float) -> None:
        """The §5.5.2 radio power-up pooling path."""
        required = self.required_energy(waiting, now)
        available = self.pool.level + sum(
            max(0.0, op.thread.active_reserve.level) for op in waiting)
        if available + 1e-12 >= required:
            # Affordable now: draw only the shortfall from the callers,
            # leaving their surplus in their own reserves.
            shortfall = max(0.0, required - self.pool.level)
            for op in waiting:
                if shortfall <= 0.0:
                    break
                take = min(shortfall,
                           max(0.0, op.thread.active_reserve.level))
                moved = op.thread.active_reserve.transfer_to(self.pool,
                                                             take)
                op.contributed_joules += moved
                self.stats.total_pool_contributions += moved
                shortfall -= moved
        else:
            # Not yet affordable: blocked callers contribute everything
            # their taps have acquired and keep sleeping (§5.5.2).
            for op in waiting:
                self._contribute(op)
        if self.pool.level + 1e-12 >= required:
            bill = self._state_cost(now) + sum(
                self._declared_data_cost(op.request) for op in waiting)
            self.pool.consume(min(bill, self.pool.level))
            self._record(waiting, bill)
            self.stats.radio_activations_requested += 1
            for op in waiting:
                op.billed_joules += bill / len(waiting)
                self._start_transfer(op, now)

    def _try_start_individually(self, op: PendingOp, now: float) -> None:
        """Gate one op on its own reserve (plus any pool surplus)."""
        reserve = op.thread.active_reserve
        bill = self._state_cost(now) + self._declared_data_cost(op.request)
        if self.pool.level + max(0.0, reserve.level) + 1e-12 < bill:
            return
        shortfall = max(0.0, bill - self.pool.level)
        if shortfall > 0.0:
            moved = reserve.transfer_to(self.pool, shortfall)
            op.contributed_joules += moved
            self.stats.total_pool_contributions += moved
        self.pool.consume(min(bill, self.pool.level))
        op.billed_joules += bill
        self._record([op], bill)
        self._start_transfer(op, now)

    def _state_cost(self, now: float) -> float:
        """The actual (margin-free) radio state cost to debit."""
        if self.radio.would_be_idle(now):
            return self.radio.params.activation_cost
        return self.radio.params.marginal_active_cost(
            self.radio.seconds_since_activity(now))

    def _contribute(self, op: PendingOp) -> None:
        """Drain a blocked caller's reserve into the pool (§5.5.2)."""
        reserve = op.thread.active_reserve
        level = reserve.level
        if level > 0.0:
            moved = reserve.transfer_to(self.pool, level)
            op.contributed_joules += moved
            self.stats.total_pool_contributions += moved

    def _try_start_alone(self, op: PendingOp, now: float) -> None:
        reserve = op.thread.active_reserve
        bill = self._state_cost(now) + self._declared_data_cost(op.request)
        required = bill
        if self.radio.would_be_idle(now):
            required = (self.activation_margin
                        * self.radio.params.activation_cost
                        + self._declared_data_cost(op.request))
        if reserve.level + 1e-12 >= required:
            reserve.consume(min(bill, reserve.level))
            op.billed_joules += bill
            self._record([op], bill)
            if self.radio.would_be_idle(now):
                self.stats.radio_activations_requested += 1
            self._start_transfer(op, now)

    # -- transfer lifecycle -----------------------------------------------------------------

    def _start_transfer(self, op: PendingOp, now: float) -> None:
        nbytes = (max(0, op.request.bytes_out)
                  + max(op.response_bytes, max(0, op.request.bytes_in)))
        op.transfer = self.radio.begin_transfer(
            now, nbytes, op.request.total_packets(), owner=op.owner)
        op.state = OpState.TRANSFERRING
        self.stats.total_wait_seconds += now - op.submitted_at

    def _finish(self, op: PendingOp, now: float) -> None:
        wait = (op.transfer.start - op.submitted_at
                if op.transfer is not None else 0.0)
        if not self.unrestricted:
            extra = self._undeclared_recv_cost(op)
            if extra > 0.0:
                # After-the-fact debit, possibly into debt (§5.5.2).
                op.thread.active_reserve.consume(extra, allow_debt=True)
                op.billed_joules += extra
                self.stats.debt_debits += 1
                self._record([op], extra)
        op.reply = NetReply(
            bytes_out=op.request.bytes_out,
            bytes_in=max(op.response_bytes, max(0, op.request.bytes_in)),
            billed_joules=op.billed_joules,
            wait_seconds=max(0.0, wait),
            response=op.response_payload,
        )
        op.state = OpState.DONE
        self._queue.remove(op)

    def _record(self, ops: List[PendingOp], joules: float) -> None:
        self.stats.total_billed_joules += joules
        if self.ledger is not None and ops:
            share = joules / len(ops)
            for op in ops:
                self.ledger.record(op.owner, "radio", share)

    # -- event-source interface (engine idle fast-forward) ---------------------------------
    #
    # netd participates in the engine's next-event architecture.  The
    # interesting regime is a §5.5.2 pooled wait: every queued op is
    # blocked on ``required_energy`` and every engine tick repeats the
    # identical arithmetic — flow each waiter's feed tap, decay the
    # deposit, drain it into the pool.  Instead of forcing the engine
    # to tick through the whole wait, the daemon computes the *exact*
    # tick the pool will satisfy the batch (same float operations in
    # the same order, so the event lands on the bit-identical tick)
    # and replays the skipped accrual in closed form.

    #: Within this many ticks of the predicted crossing the daemon
    #: switches from the analytic bound to an exact scalar replay.
    SPAN_SCAN_WINDOW = 64

    def quiescent(self, now: float) -> bool:
        """True iff skipping ticks cannot change netd's behavior.

        An empty queue is trivially quiescent; a queue of blocked
        waiters is quiescent when the accrual regime has a closed form
        (see :meth:`_compute_span_plan`) — the §5.5.2 pool while the
        radio is idle, or §5.5.1 individual gating while it is
        active.  Anything else — transfers in flight, per-caller
        budget mode, non-canonical reserve wiring — needs per-tick
        execution.
        """
        if not self._queue:
            return True
        return self._span_plan(now) is not None

    def next_event(self, now: float) -> Optional[float]:
        """The earliest tick netd's state can change (a crossing).

        Returns the exact affordability tick when it is near, or a
        conservative checkpoint strictly before it when it is far
        (landing early is harmless — the engine takes a normal step
        and asks again).  ``None`` when the queue is empty or nothing
        accrues (starved waiters: other sources bound the span).
        Sets :attr:`horizon_firm` False on checkpoint answers so fleet
        schedulers re-poll instead of caching them.
        """
        self.horizon_firm = True
        plan = self._span_plan(now)
        if plan is None:
            return None
        if plan.mode == "active":
            return self._active_crossing(plan)
        accrual = plan.accrual
        if not accrual.addends or accrual.avail_sum <= 0.0:
            return None
        tick_s = self.tick_s
        # clock.ticks has not executed yet: the pump's next check runs
        # at this very tick index, with one fresh round of accrual.
        # The j-th future check therefore lands on tick base + j - 1.
        base_tick = self._ticks()
        pool_level = self.pool.level
        required = plan.required
        if pool_level + accrual.avail_sum + 1e-12 >= required:
            return base_tick * tick_s  # affordable at the pending tick
        # Far from the crossing, take the shared analytic bound (the
        # per-tick gain is estimated by avail_sum, which can only land
        # the engine early, never past the crossing).
        window = self.SPAN_SCAN_WINDOW
        skip = accrual.analytic_skip_ticks(accrual.avail_sum, pool_level,
                                           required, tick_s, window)
        if skip is not None:
            self.horizon_firm = False  # re-derived later lands farther
            return (base_tick + skip) * tick_s
        # Exact scalar replay of the pump's own float arithmetic: at
        # each tick the pump sees pool + avail_sum; failing that, the
        # contributions land one reserve at a time and the pump
        # re-checks the pool alone (the two sums can differ in the
        # last ulp, so both gates are modeled).
        pool_sim = pool_level
        for round_no in range(1, 2 * window + 1):
            available = pool_sim + accrual.avail_sum
            if available + 1e-12 >= required:
                return (base_tick + round_no - 1) * tick_s
            for addend in accrual.addends:
                pool_sim = pool_sim + addend
            if pool_sim + 1e-12 >= required:
                return (base_tick + round_no - 1) * tick_s
        self.horizon_firm = False
        return (base_tick + 2 * window - 1) * tick_s  # checkpoint

    def _active_crossing(self, plan: _SpanPlan) -> Optional[float]:
        """The exact tick an individually-gated op becomes affordable.

        The §5.5.1 regime: the radio is active, so each waiting op is
        gated on ``pool + its own reserve >= marginal_active_cost +
        data``, where the marginal cost *grows* at plateau power as
        the radio idles down while the reserve accrues at its tap
        rate.  The scan replays the pump's own float arithmetic tick
        by tick — one fresh accrual round, then each op's gate in
        queue order — from live levels, so the returned instant is the
        bit-exact tick ``_try_start_individually`` will fire on.
        Returns ``None`` when the radio's idle transition (an event
        the radio source already declares) arrives first.
        """
        radio = self.radio
        params = radio.params
        tick_s = self.tick_s
        base_tick = self._ticks()
        last = radio.last_activity
        plateau = params.plateau_watts
        timeout = params.idle_timeout_s
        pool_level = self.pool.level
        levels: dict = {}
        inflows: dict = {}
        for entry in plan.accrual.entries:
            key = id(entry.reserve)
            levels[key] = entry.reserve.level
            inflows[key] = entry.inflow
        # The scan is bounded by the radio's idle flip and by the feed
        # budget (beyond it a source could clamp and the per-tick
        # arithmetic would change); past the cap a checkpoint is
        # conservative and the engine simply asks again from there.
        max_rounds = int((last + timeout - base_tick * tick_s) / tick_s) + 2
        budget = plan.accrual.budget_ticks(tick_s)
        if budget != math.inf:
            max_rounds = min(max_rounds, max(1, int(budget) - 4))
        max_rounds = min(max_rounds, 4096)
        for round_no in range(1, max_rounds + 1):
            now_j = (base_tick + round_no - 1) * tick_s
            since = now_j - last
            if since >= timeout:
                return None  # the radio idles first; its source bounds
            for key, inflow in inflows.items():
                levels[key] = levels[key] + inflow
            state_cost = plateau * min(since, timeout)
            for op, reserve, data_cost in plan.gates:
                bill = state_cost + data_cost
                if (pool_level + max(0.0, levels[id(reserve)]) + 1e-12
                        >= bill):
                    return (base_tick + round_no - 1) * tick_s
        self.horizon_firm = False
        return (base_tick + max_rounds - 1) * tick_s  # checkpoint

    def span_frozen_taps(self, now: float) -> List[Tap]:
        """Feed taps the daemon integrates itself over the next span."""
        plan = self._span_plan(now)
        if plan is None:
            return []
        return plan.accrual.frozen_taps()

    def advance_span(self, now: float, span: float) -> None:
        """Replay ``span`` seconds of blocked-wait accrual in closed form.

        Pooled mode delegates to
        :func:`repro.core.pooling.replay_pooled_accrual`: the pool
        level advances through the *exact* per-tick float sequence
        (chunked ``numpy.cumsum`` is sequential, hence bit-identical
        to repeated ``+=``), while cumulative counters and the
        feed-source debits — the root, or a junction reserve on a
        chained feed — move in bulk.  Active mode replays through
        :func:`repro.core.pooling.replay_reserve_accrual`: the same
        exact chain, but the deposits stay in each caller's own
        reserve (§5.5.1 — nothing pools until an op can pay).
        """
        plan = self._span_plan(now)
        if plan is None or self.tick_s is None:
            return
        ticks = int(round(span / self.tick_s))
        if ticks <= 0:
            return
        if plan.mode == "active":
            replay_reserve_accrual(self.graph, plan.accrual, ticks)
            self._span_cache = None
            return

        def credit(op: PendingOp, amount: float) -> None:
            op.contributed_joules += amount

        contributed = replay_pooled_accrual(self.graph, self.pool,
                                            plan.accrual, ticks, credit)
        if contributed > 0.0:
            self.stats.total_pool_contributions += contributed
        self._span_cache = None

    def _span_plan(self, now: float) -> Optional[_SpanPlan]:
        """The cached closed-form analysis for this tick (or None).

        Two cache layers: a per-``now`` memo (several protocol calls
        per tick share one answer) over the persistent regime, which
        is *revalidated* — key match plus cheap state invariants —
        rather than recomputed from a full graph walk each tick.
        """
        cache = self._span_cache
        if cache is not None and cache[0] == now:
            return cache[1]
        plan = self._revalidate_regime(now)
        if plan is None:
            plan = self._compute_span_plan(now)
            self._regime = plan
        self._span_cache = (now, plan)
        return plan

    def _regime_key(self) -> tuple:
        policy = self.graph.decay_policy
        return (self.graph.generation, policy.enabled, policy.lam,
                tuple(id(op) for op in self._queue))

    def _revalidate_regime(self, now: float) -> Optional[_SpanPlan]:
        """The persistent regime, iff its invariants still hold."""
        plan = self._regime
        if plan is None or plan.key != self._regime_key():
            return None
        for op in plan.waiting:
            if op.state is not OpState.WAITING_ENERGY:
                return None
        radio = self.radio
        if plan.mode == "pooled":
            if not radio.would_be_idle(now):
                return None
            if self.pool._level < 0.0:
                return None
            for entry in plan.accrual.entries:
                if entry.reserve._level != 0.0:
                    return None  # an external deposit broke the regime
        else:
            if radio.would_be_idle(now) or radio.transfers_in_flight:
                return None
        if plan.accrual.budget_ticks(self.tick_s) < 4 * self.SPAN_SCAN_WINDOW:
            return None
        return plan

    def _compute_span_plan(self, now: float) -> Optional[_SpanPlan]:
        """Analyze the queue for a closed-form blocked-wait regime.

        Returns None — per-tick execution — unless *all* of: the
        engine wired a tick grid; every queued op is WAITING_ENERGY in
        cooperative (non-unrestricted) mode; and the pool/waiter
        wiring passes the shared canonical-shape analysis
        (:func:`repro.core.pooling.analyze_pooled_accrual`) — every
        waiter reserve uncapped, fed by exactly one constant tap from
        the root or from a const-only junction reserve (a chained
        feed), with no other taps touching it, and an untapped
        uncapped decay-exempt pool.  The radio's power state picks the
        regime: idle with a real activation cost is the §5.5.2 pooled
        path (waiter reserves additionally drained to exactly zero);
        active with no transfers in flight is the §5.5.1 individual
        gating path (reserves keep their balance, so decay must be off
        or the reserve exempt — the pooling module enforces it).
        """
        if self.tick_s is None or self._ticks is None:
            return None
        if self.unrestricted or not self.cooperative:
            return None
        waiting = [op for op in self._queue
                   if op.state is OpState.WAITING_ENERGY]
        if not waiting or len(waiting) != len(self._queue):
            return None
        radio = self.radio
        key = self._regime_key()
        window_gate = 4 * self.SPAN_SCAN_WINDOW
        if radio.would_be_idle(now):
            if radio.params.activation_cost <= 0.0:
                return None
            accrual = analyze_pooled_accrual(
                self.graph, self.pool, waiting,
                reserve_of=lambda op: getattr(op.thread, "_active_reserve",
                                              None),
                tick_s=self.tick_s)
            if accrual is None:
                return None
            # Every feed source must be able to fund its frozen taps
            # through any near-horizon span (long spans are bounded in
            # next_event).  The budget is the exact net-rate bound: a
            # pass-through junction (constant inflow covering its
            # drains) is infinite and never gates the regime — the old
            # conservative gross-drain haircut degraded exactly the
            # chained feeds the span solver handles.
            if accrual.budget_ticks(self.tick_s) < window_gate:
                return None
            required = self.required_energy(waiting, now)
            return _SpanPlan(waiting=waiting, required=required,
                             accrual=accrual, mode="pooled", key=key)
        # Radio active: the individual gating path (no pooled power-up
        # to amortize).  A transfer in flight needs per-tick completion
        # checks, so only a transfer-free active radio qualifies.
        if radio.transfers_in_flight:
            return None
        accrual = analyze_pooled_accrual(
            self.graph, self.pool, waiting,
            reserve_of=lambda op: getattr(op.thread, "_active_reserve",
                                          None),
            tick_s=self.tick_s, drain_to_pool=False)
        if accrual is None:
            return None
        if accrual.budget_ticks(self.tick_s) < window_gate:
            return None
        gates = [(op, op.thread.active_reserve,
                  self._declared_data_cost(op.request)) for op in waiting]
        return _SpanPlan(waiting=waiting, required=0.0, accrual=accrual,
                         mode="active", key=key, gates=gates)

    # -- engine integration --------------------------------------------------------------------

    def reply_for(self, op: PendingOp) -> Optional[NetReply]:
        """The reply if ``op`` completed, else None (engine polls this)."""
        return op.reply

    @property
    def waiting_count(self) -> int:
        """Blocked operations (the Figure 13b queue)."""
        return sum(1 for o in self._queue
                   if o.state is OpState.WAITING_ENERGY)

    @property
    def pending_count(self) -> int:
        """All queued operations, blocked or in flight.

        The engine's idle fast-forward refuses to skip ticks while
        this is non-zero: blocked operations accrue pool energy from
        the per-tick flow pump, and in-flight transfers complete on a
        tick boundary.
        """
        return len(self._queue)
