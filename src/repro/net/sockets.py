"""libOS socket veneer over netd.

"netd, for example, implements gates for libOS TCP/IP sockets"
(Figure 16).  Programs in this reproduction are generator coroutines,
so a socket here is a small factory for :class:`NetRequest` objects
bound to a destination — the yield still goes through the engine and
netd, keeping blocking and billing semantics in one place.

Typical use inside a program::

    sock = Socket("mail")
    reply = yield sock.request(bytes_out=256, bytes_in=KiB(30))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import NetworkError
from ..sim.process import NetRequest

#: Conventional MTU used to derive packet counts from byte totals.
MTU_BYTES = 1500


@dataclass
class Socket:
    """A destination-bound request factory."""

    destination: str
    mtu: int = MTU_BYTES

    def __post_init__(self) -> None:
        if not self.destination:
            raise NetworkError("socket needs a destination")
        if self.mtu <= 0:
            raise NetworkError("MTU must be positive")

    def request(self, bytes_out: int = 0, bytes_in: int = 0,
                payload: Any = None) -> NetRequest:
        """A round trip with declared sizes (prepaid by netd)."""
        if bytes_out < 0 or bytes_in < 0:
            raise NetworkError("byte counts must be non-negative")
        return NetRequest(bytes_out=bytes_out, bytes_in=bytes_in,
                          destination=self.destination, payload=payload)

    def send(self, nbytes: int, payload: Any = None) -> NetRequest:
        """Outbound-only datagram(s)."""
        return self.request(bytes_out=nbytes, payload=payload)

    def poll(self, probe_bytes: int = 64, payload: Any = None) -> NetRequest:
        """A poll whose response size the server decides.

        The inbound cost is unknown up front, so netd debits it after
        the fact — possibly into debt (§5.5.2).
        """
        return NetRequest(bytes_out=probe_bytes, bytes_in=0,
                          destination=self.destination, payload=payload)

    def datagram(self, nbytes: int) -> NetRequest:
        """One UDP packet of ``nbytes`` (the Figure 4 keep-alive)."""
        return NetRequest(bytes_out=nbytes, bytes_in=0, packets=1,
                          destination=self.destination)
