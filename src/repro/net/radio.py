"""The radio device state machine (paper §4.3, Figure 4).

State lives where the platform puts it: the closed ARM9 owns the radio
and imposes a fixed 20 s inactivity timeout that Cinder cannot change.
The device here models the *physical* behavior — activation, the
plateau, per-transfer draw, the timeout ride-down — while
:class:`~repro.energy.radio_model.RadioPowerParams` provides both the
physical constants and the *billing* estimates netd charges.

Physical cycle shape: a short high-draw ramp (the Figure 4 spike)
followed by a plateau whose level is set so a minimal cycle (one
packet, then timeout) costs the measured activation energy — jittered
per cycle within the paper's 8.8–11.9 J envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

import numpy as np

from ..energy.radio_model import RadioPowerParams
from ..errors import NetworkError


class RadioState(Enum):
    """The two externally visible radio power states."""

    IDLE = "idle"
    ACTIVE = "active"


@dataclass
class Transfer:
    """An in-flight data transfer occupying the radio."""

    start: float
    end: float
    nbytes: int
    npackets: int
    #: Extra draw while transferring: marginal data energy spread over
    #: the transfer duration.
    extra_watts: float
    owner: str = ""

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.end


class RadioDevice:
    """The GSM/EDGE data-path radio."""

    def __init__(self, params: Optional[RadioPowerParams] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.params = params if params is not None else RadioPowerParams()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.state = RadioState.IDLE
        self.activated_at = -float("inf")
        self.last_activity = -float("inf")
        self._cycle_jitter = 1.0
        self._transfers: List[Transfer] = []
        # -- statistics --
        self.activation_count = 0
        self.total_active_seconds = 0.0
        self.total_bytes = 0
        self.total_packets = 0

    # -- queries ---------------------------------------------------------------

    def is_active(self) -> bool:
        """True while the radio draws plateau power."""
        return self.state is RadioState.ACTIVE

    def seconds_since_activity(self, now: float) -> float:
        """Seconds since the last packet (inf if never)."""
        return now - self.last_activity

    def would_be_idle(self, now: float) -> bool:
        """Where the timeout rule puts the radio at time ``now``."""
        return (self.state is RadioState.IDLE
                or self.seconds_since_activity(now) >= self.params.idle_timeout_s)

    def next_state_change(self, now: float) -> Optional[float]:
        """Earliest future instant the radio's power draw changes.

        Used by the engine's idle fast-forward: within a span that ends
        at or before this instant (and holds no transfers), the radio's
        contribution to system power is constant.  Returns None when
        idle — an idle radio changes state only through new activity,
        which the engine never fast-forwards past.
        """
        if self.state is not RadioState.ACTIVE:
            return None
        instants = [self.last_activity + self.params.idle_timeout_s]
        ramp_end = self.activated_at + self.params.ramp_duration_s
        if now < ramp_end:
            instants.append(ramp_end)
        for transfer in self._transfers:
            instants.append(transfer.end)
        return min(instants)

    def estimated_send_cost(self, now: float, nbytes: int,
                            npackets: int = 0) -> float:
        """What netd should charge for sending now (§5.5.2 semantics)."""
        packets = npackets if npackets > 0 else max(1, nbytes // 1500 + 1)
        if self.would_be_idle(now):
            return self.params.send_cost(nbytes, packets, None)
        return self.params.send_cost(
            nbytes, packets, self.seconds_since_activity(now))

    # -- activity ----------------------------------------------------------------

    def touch(self, now: float) -> None:
        """Register packet activity: activate if idle, reset the timer."""
        if self.state is RadioState.IDLE:
            self.state = RadioState.ACTIVE
            self.activated_at = now
            self.activation_count += 1
            self._cycle_jitter = self.params.sample_cycle_jitter(self._rng)
        self.last_activity = max(self.last_activity, now)

    def begin_transfer(self, now: float, nbytes: int, npackets: int = 0,
                       owner: str = "") -> Transfer:
        """Start moving ``nbytes``; returns the Transfer with its end time.

        The radio is touched at the start, and :meth:`tick` touches it
        again when the transfer completes, so the idle timeout runs
        from the *end* of the transfer, as on the real device.
        """
        if nbytes < 0:
            raise NetworkError("transfer size must be non-negative")
        packets = npackets if npackets > 0 else max(1, nbytes // 1500 + 1)
        self.touch(now)
        duration = max(self.params.transfer_seconds(nbytes), 1e-9)
        marginal = (self.params.per_packet_joules * packets
                    + self.params.per_byte_joules * nbytes)
        transfer = Transfer(start=now, end=now + duration, nbytes=nbytes,
                            npackets=packets,
                            extra_watts=marginal / duration, owner=owner)
        self._transfers.append(transfer)
        self.total_bytes += nbytes
        self.total_packets += packets
        return transfer

    def tick(self, now: float) -> None:
        """Advance the state machine: finish transfers, apply timeout."""
        for transfer in [t for t in self._transfers if t.end <= now]:
            self.touch(transfer.end)
            self._transfers.remove(transfer)
        if (self.state is RadioState.ACTIVE and not self._transfers
                and self.seconds_since_activity(now)
                >= self.params.idle_timeout_s):
            idled_at = self.last_activity + self.params.idle_timeout_s
            self.total_active_seconds += idled_at - self.activated_at
            self.state = RadioState.IDLE

    # -- power ---------------------------------------------------------------------

    def plateau_true_watts(self) -> float:
        """The plateau draw that makes a minimal cycle cost the jittered
        activation energy (ramp energy included in the budget)."""
        params = self.params
        if params.idle_timeout_s <= 0:
            return params.plateau_watts
        ramp_energy = params.ramp_extra_watts * min(params.ramp_duration_s,
                                                    params.idle_timeout_s)
        cycle = params.activation_joules_mean * self._cycle_jitter
        return max(0.0, (cycle - ramp_energy) / params.idle_timeout_s)

    def power_above_baseline(self, now: float) -> float:
        """Instantaneous extra draw at ``now`` (plateau + ramp + data)."""
        if self.state is not RadioState.ACTIVE:
            return 0.0
        watts = self.plateau_true_watts()
        if now - self.activated_at < self.params.ramp_duration_s:
            watts += self.params.ramp_extra_watts
        watts += sum(t.extra_watts for t in self._transfers
                     if t.active_at(now))
        return watts

    @property
    def transfers_in_flight(self) -> int:
        """Number of transfers currently occupying the radio."""
        return len(self._transfers)

    def active_seconds(self, now: float) -> float:
        """Cumulative active time, counting a still-open cycle."""
        total = self.total_active_seconds
        if self.state is RadioState.ACTIVE:
            total += now - self.activated_at
        return total
