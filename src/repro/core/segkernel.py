"""The switch-location scan kernel (optional numba, numpy fallback).

Profiling the segmented span engine shows the hot inner loop is not
the linear algebra but the *monitor scan*: for every candidate
segment, every sampled state vector is checked against the regime's
clamp, capacity, debt and saturation monitors, and the first
violating sample seeds the bisection.  This module isolates exactly
that loop so it can be compiled.

The kernel is **transcendental-free by design**: callers precompute
the sampled trajectories (the matrix exponential / phi-function
machinery stays in :mod:`repro.core.spansolver`, shared by both
backends), and the kernel only compares and accumulates in a fixed
order.  Comparisons are exact and the saturation functionals
accumulate term-by-term in array order on both backends, so the
compiled and fallback paths agree **bit-identically** — not merely
within tolerance — which is what the CI numba leg asserts.

Backend selection: numba is optional (it is *not* a dependency of
this package).  When importable, the loop-shaped implementations are
``@njit``-compiled lazily on first use; otherwise — or when the
``CINDER_NO_NUMBA`` environment variable is set — the vectorized
numpy implementations serve.  :data:`BACKEND` reports which one is
active, and the ``*_numpy`` names always expose the fallback for
differential testing.
"""

from __future__ import annotations

import os

import numpy as np

_numba = None
if not os.environ.get("CINDER_NO_NUMBA"):
    try:  # pragma: no cover - exercised only where numba is installed
        import numba as _numba
    except ImportError:
        _numba = None

#: Which implementation serves :func:`first_hits` / :func:`violated_at`.
BACKEND = "numba" if _numba is not None else "numpy"


def _sat_values_numpy(states: np.ndarray, sat_ptr: np.ndarray,
                      sat_src: np.ndarray, sat_wts: np.ndarray,
                      sat_c: np.ndarray) -> np.ndarray:
    """Saturation functionals ``c + Σ w·L_src`` over ``states[..., n]``.

    Accumulates term by term in array order — the same order the
    compiled loop uses — so both backends round identically.
    """
    n_sat = sat_c.shape[0]
    out = np.empty(states.shape[:-1] + (n_sat,))
    for m in range(n_sat):
        y = np.full(states.shape[:-1], sat_c[m])
        for t in range(int(sat_ptr[m]), int(sat_ptr[m + 1])):
            y = y + sat_wts[t] * states[..., sat_src[t]]
        out[..., m] = y
    return out


def first_hits_numpy(states: np.ndarray, clamp_rows: np.ndarray,
                     cap_rows: np.ndarray, cap_limits: np.ndarray,
                     debt_rows: np.ndarray, ltol: np.ndarray,
                     sat_ptr: np.ndarray, sat_src: np.ndarray,
                     sat_wts: np.ndarray, sat_c: np.ndarray,
                     sat_lo: np.ndarray, sat_hi: np.ndarray,
                     sat_tol: np.ndarray) -> np.ndarray:
    """First violated sample per device, or -1.

    ``states`` is ``(devices, samples, reserves)``; ``ltol`` is the
    per-device level tolerance.  Monitor semantics (shared contract):

    * clamp rows violate below ``-ltol``;
    * cap rows violate above their per-row limit;
    * debt rows violate above ``-ltol`` (repayment completing);
    * saturation functionals violate outside ``[lo - tol, hi + tol]``.
    """
    g, k, _ = states.shape
    hit = np.zeros((g, k), dtype=bool)
    if clamp_rows.size:
        hit |= (states[:, :, clamp_rows]
                < -ltol[:, None, None]).any(axis=2)
    if cap_rows.size:
        hit |= (states[:, :, cap_rows] > cap_limits).any(axis=2)
    if debt_rows.size:
        hit |= (states[:, :, debt_rows]
                > -ltol[:, None, None]).any(axis=2)
    if sat_c.size:
        y = _sat_values_numpy(states, sat_ptr, sat_src, sat_wts, sat_c)
        hit |= ((y < sat_lo - sat_tol) | (y > sat_hi + sat_tol)).any(axis=2)
    out = np.full(g, -1, dtype=np.int64)
    any_rows = hit.any(axis=1)
    out[any_rows] = hit[any_rows].argmax(axis=1)
    return out


def violated_at_numpy(states: np.ndarray, clamp_rows: np.ndarray,
                      cap_rows: np.ndarray, cap_limits: np.ndarray,
                      debt_rows: np.ndarray, ltol: np.ndarray,
                      sat_ptr: np.ndarray, sat_src: np.ndarray,
                      sat_wts: np.ndarray, sat_c: np.ndarray,
                      sat_lo: np.ndarray, sat_hi: np.ndarray,
                      sat_tol: np.ndarray) -> np.ndarray:
    """Per-device violation of one state vector each (``(g, n)``)."""
    g = states.shape[0]
    hit = np.zeros(g, dtype=bool)
    if clamp_rows.size:
        hit |= (states[:, clamp_rows] < -ltol[:, None]).any(axis=1)
    if cap_rows.size:
        hit |= (states[:, cap_rows] > cap_limits).any(axis=1)
    if debt_rows.size:
        hit |= (states[:, debt_rows] > -ltol[:, None]).any(axis=1)
    if sat_c.size:
        y = _sat_values_numpy(states, sat_ptr, sat_src, sat_wts, sat_c)
        hit |= ((y < sat_lo - sat_tol) | (y > sat_hi + sat_tol)).any(axis=1)
    return hit


def _first_hits_loops(states, clamp_rows, cap_rows, cap_limits,
                      debt_rows, ltol, sat_ptr, sat_src, sat_wts,
                      sat_c, sat_lo, sat_hi, sat_tol):
    """Loop-shaped :func:`first_hits_numpy` (the ``@njit`` source).

    Early-exits per device at the first violated sample; arithmetic
    per monitor is identical to the vectorized fallback (comparisons
    plus in-order accumulation), so results match bit for bit.
    """
    g, k, _ = states.shape
    out = np.full(g, -1, dtype=np.int64)
    for d in range(g):
        tol = ltol[d]
        for s in range(k):
            bad = False
            for r in range(clamp_rows.shape[0]):
                if states[d, s, clamp_rows[r]] < -tol:
                    bad = True
                    break
            if not bad:
                for r in range(cap_rows.shape[0]):
                    if states[d, s, cap_rows[r]] > cap_limits[r]:
                        bad = True
                        break
            if not bad:
                for r in range(debt_rows.shape[0]):
                    if states[d, s, debt_rows[r]] > -tol:
                        bad = True
                        break
            if not bad:
                for m in range(sat_c.shape[0]):
                    y = sat_c[m]
                    for t in range(sat_ptr[m], sat_ptr[m + 1]):
                        y = y + sat_wts[t] * states[d, s, sat_src[t]]
                    if (y < sat_lo[m] - sat_tol[m]
                            or y > sat_hi[m] + sat_tol[m]):
                        bad = True
                        break
            if bad:
                out[d] = s
                break
    return out


def _violated_at_loops(states, clamp_rows, cap_rows, cap_limits,
                       debt_rows, ltol, sat_ptr, sat_src, sat_wts,
                       sat_c, sat_lo, sat_hi, sat_tol):
    """Loop-shaped :func:`violated_at_numpy` (the ``@njit`` source)."""
    g = states.shape[0]
    out = np.zeros(g, dtype=np.bool_)
    for d in range(g):
        tol = ltol[d]
        bad = False
        for r in range(clamp_rows.shape[0]):
            if states[d, clamp_rows[r]] < -tol:
                bad = True
                break
        if not bad:
            for r in range(cap_rows.shape[0]):
                if states[d, cap_rows[r]] > cap_limits[r]:
                    bad = True
                    break
        if not bad:
            for r in range(debt_rows.shape[0]):
                if states[d, debt_rows[r]] > -tol:
                    bad = True
                    break
        if not bad:
            for m in range(sat_c.shape[0]):
                y = sat_c[m]
                for t in range(sat_ptr[m], sat_ptr[m + 1]):
                    y = y + sat_wts[t] * states[d, sat_src[t]]
                if (y < sat_lo[m] - sat_tol[m]
                        or y > sat_hi[m] + sat_tol[m]):
                    bad = True
                    break
        out[d] = bad
    return out


def _derive_modes_loops(lvl, lam, ltol, sat_rtol, rate, const_mask, cap,
                        src, snk, finite_cap, decay_mask, any_decayable,
                        root, ci_ptr, ci_idx, cf_ptr, cf_idx,
                        pi_ptr, pi_idx, pf_ptr, pf_idx, mode, eff):
    """Fast-path regime-mode classification (the ``@njit`` source).

    The common-case core of the segmented engine's per-segment
    ``_derive_modes``: DEBT marking, capacity pins (FULL), and the
    effective constant rates under those pins, over CSR tap adjacency
    (``*_ptr``/``*_idx`` pairs in the exact order the Python dicts
    iterate).  Fills ``mode`` (int8 regime codes) and ``eff`` in
    place and returns 0 when the derivation is complete — every sum
    accumulates in the same array order as the Python body, so the
    outputs match it bit for bit.  Returns 1 — outputs unspecified,
    caller must run the full Python derivation — whenever the state
    needs machinery the kernel does not carry: a hovering cap pin, a
    time-varying inflow into a binding capacity, an empty-pin
    fixpoint candidate, or a non-normal root.
    """
    n = lvl.shape[0]
    m = rate.shape[0]
    for i in range(n):
        if lvl[i] < 0.0:
            mode[i] = 1  # DEBT
        else:
            mode[i] = 0  # NORMAL
    # -- capacity pins: at the cap with live inflow --
    for t in range(finite_cap.shape[0]):
        i = finite_cap[t]
        if mode[i] != 0:
            continue
        band = 1e-11 * cap[i]
        if band < 1e-9:
            band = 1e-9
        if lvl[i] < cap[i] - 2.0 * band:
            continue
        c_in_rate = 0.0
        for p in range(ci_ptr[i], ci_ptr[i + 1]):
            j = ci_idx[p]
            if mode[src[j]] != 1:
                c_in_rate = c_in_rate + rate[j]
        live_prop_in = False
        for p in range(pi_ptr[i], pi_ptr[i + 1]):
            if mode[src[pi_idx[p]]] == 0:
                live_prop_in = True
                break
        decay_in = i == root and lam > 0.0 and any_decayable
        if c_in_rate <= 0.0 and not live_prop_in and not decay_in:
            continue  # nothing arrives: normal dynamics are exact
        drains = (cf_ptr[i + 1] > cf_ptr[i]
                  or pf_ptr[i + 1] > pf_ptr[i])
        decays = lam > 0.0 and decay_mask[i]
        if not drains and not decays:
            mode[i] = 3  # FULL
            continue
        if live_prop_in:
            return 1  # no constant rewrite: python refuses
        out_rate = 0.0
        for p in range(cf_ptr[i], cf_ptr[i + 1]):
            out_rate = out_rate + rate[cf_idx[p]]
        pf_sum = 0.0
        for p in range(pf_ptr[i], pf_ptr[i + 1]):
            pf_sum = pf_sum + rate[pf_idx[p]]
        out_rate = out_rate + pf_sum * lvl[i]
        if decays:
            out_rate = out_rate + lam * lvl[i]
        if c_in_rate >= out_rate * (1.0 - sat_rtol):
            return 1  # hover: python runs the acceptance bisection
        # else: descending through the band — normal dynamics exact
    # -- effective constant rates under the pins --
    for j in range(m):
        if const_mask[j]:
            if mode[src[j]] == 1 or mode[snk[j]] == 3:
                eff[j] = 0.0
            else:
                eff[j] = rate[j]
        else:
            eff[j] = 0.0
    # -- empty-pin candidates need the python fixpoint --
    boundary = 4.0 * ltol
    for i in range(n):
        if (i != root and mode[i] == 0 and lvl[i] <= boundary
                and cf_ptr[i + 1] > cf_ptr[i]):
            return 1
    if mode[root] != 0:
        return 1  # python path refuses (non-normal battery)
    return 0


#: The fallback is the same loop, uncompiled: mode derivation runs on
#: graphs of a handful of reserves, where a vectorized rewrite buys
#: nothing — and sharing one source makes bit-identity trivial.
derive_modes_numpy = _derive_modes_loops


if _numba is not None:  # pragma: no cover - exercised on the numba CI leg
    first_hits = _numba.njit(cache=True)(_first_hits_loops)
    violated_at = _numba.njit(cache=True)(_violated_at_loops)
    derive_modes = _numba.njit(cache=True)(_derive_modes_loops)
else:
    first_hits = first_hits_numpy
    violated_at = violated_at_numpy
    derive_modes = derive_modes_numpy

#: Empty saturation-monitor pack (most regimes carry no saturation
#: functionals; sharing the empties avoids per-call allocations).
EMPTY_SAT = (np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64),
             np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0),
             np.zeros(0))
