"""The switch-location scan kernel (optional numba, numpy fallback).

Profiling the segmented span engine shows the hot inner loop is not
the linear algebra but the *monitor scan*: for every candidate
segment, every sampled state vector is checked against the regime's
clamp, capacity, debt and saturation monitors, and the first
violating sample seeds the bisection.  This module isolates exactly
that loop so it can be compiled.

The kernel is **transcendental-free by design**: callers precompute
the sampled trajectories (the matrix exponential / phi-function
machinery stays in :mod:`repro.core.spansolver`, shared by both
backends), and the kernel only compares and accumulates in a fixed
order.  Comparisons are exact and the saturation functionals
accumulate term-by-term in array order on both backends, so the
compiled and fallback paths agree **bit-identically** — not merely
within tolerance — which is what the CI numba leg asserts.

Backend selection: numba is optional (it is *not* a dependency of
this package).  When importable, the loop-shaped implementations are
``@njit``-compiled lazily on first use; otherwise — or when the
``CINDER_NO_NUMBA`` environment variable is set — the vectorized
numpy implementations serve.  :data:`BACKEND` reports which one is
active, and the ``*_numpy`` names always expose the fallback for
differential testing.
"""

from __future__ import annotations

import os

import numpy as np

_numba = None
if not os.environ.get("CINDER_NO_NUMBA"):
    try:  # pragma: no cover - exercised only where numba is installed
        import numba as _numba
    except ImportError:
        _numba = None

#: Which implementation serves :func:`first_hits` / :func:`violated_at`.
BACKEND = "numba" if _numba is not None else "numpy"


def _sat_values_numpy(states: np.ndarray, sat_ptr: np.ndarray,
                      sat_src: np.ndarray, sat_wts: np.ndarray,
                      sat_c: np.ndarray) -> np.ndarray:
    """Saturation functionals ``c + Σ w·L_src`` over ``states[..., n]``.

    Accumulates term by term in array order — the same order the
    compiled loop uses — so both backends round identically.
    """
    n_sat = sat_c.shape[0]
    out = np.empty(states.shape[:-1] + (n_sat,))
    for m in range(n_sat):
        y = np.full(states.shape[:-1], sat_c[m])
        for t in range(int(sat_ptr[m]), int(sat_ptr[m + 1])):
            y = y + sat_wts[t] * states[..., sat_src[t]]
        out[..., m] = y
    return out


def first_hits_numpy(states: np.ndarray, clamp_rows: np.ndarray,
                     cap_rows: np.ndarray, cap_limits: np.ndarray,
                     debt_rows: np.ndarray, ltol: np.ndarray,
                     sat_ptr: np.ndarray, sat_src: np.ndarray,
                     sat_wts: np.ndarray, sat_c: np.ndarray,
                     sat_lo: np.ndarray, sat_hi: np.ndarray,
                     sat_tol: np.ndarray) -> np.ndarray:
    """First violated sample per device, or -1.

    ``states`` is ``(devices, samples, reserves)``; ``ltol`` is the
    per-device level tolerance.  Monitor semantics (shared contract):

    * clamp rows violate below ``-ltol``;
    * cap rows violate above their per-row limit;
    * debt rows violate above ``-ltol`` (repayment completing);
    * saturation functionals violate outside ``[lo - tol, hi + tol]``.
    """
    g, k, _ = states.shape
    hit = np.zeros((g, k), dtype=bool)
    if clamp_rows.size:
        hit |= (states[:, :, clamp_rows]
                < -ltol[:, None, None]).any(axis=2)
    if cap_rows.size:
        hit |= (states[:, :, cap_rows] > cap_limits).any(axis=2)
    if debt_rows.size:
        hit |= (states[:, :, debt_rows]
                > -ltol[:, None, None]).any(axis=2)
    if sat_c.size:
        y = _sat_values_numpy(states, sat_ptr, sat_src, sat_wts, sat_c)
        hit |= ((y < sat_lo - sat_tol) | (y > sat_hi + sat_tol)).any(axis=2)
    out = np.full(g, -1, dtype=np.int64)
    any_rows = hit.any(axis=1)
    out[any_rows] = hit[any_rows].argmax(axis=1)
    return out


def violated_at_numpy(states: np.ndarray, clamp_rows: np.ndarray,
                      cap_rows: np.ndarray, cap_limits: np.ndarray,
                      debt_rows: np.ndarray, ltol: np.ndarray,
                      sat_ptr: np.ndarray, sat_src: np.ndarray,
                      sat_wts: np.ndarray, sat_c: np.ndarray,
                      sat_lo: np.ndarray, sat_hi: np.ndarray,
                      sat_tol: np.ndarray) -> np.ndarray:
    """Per-device violation of one state vector each (``(g, n)``)."""
    g = states.shape[0]
    hit = np.zeros(g, dtype=bool)
    if clamp_rows.size:
        hit |= (states[:, clamp_rows] < -ltol[:, None]).any(axis=1)
    if cap_rows.size:
        hit |= (states[:, cap_rows] > cap_limits).any(axis=1)
    if debt_rows.size:
        hit |= (states[:, debt_rows] > -ltol[:, None]).any(axis=1)
    if sat_c.size:
        y = _sat_values_numpy(states, sat_ptr, sat_src, sat_wts, sat_c)
        hit |= ((y < sat_lo - sat_tol) | (y > sat_hi + sat_tol)).any(axis=1)
    return hit


def _first_hits_loops(states, clamp_rows, cap_rows, cap_limits,
                      debt_rows, ltol, sat_ptr, sat_src, sat_wts,
                      sat_c, sat_lo, sat_hi, sat_tol):
    """Loop-shaped :func:`first_hits_numpy` (the ``@njit`` source).

    Early-exits per device at the first violated sample; arithmetic
    per monitor is identical to the vectorized fallback (comparisons
    plus in-order accumulation), so results match bit for bit.
    """
    g, k, _ = states.shape
    out = np.full(g, -1, dtype=np.int64)
    for d in range(g):
        tol = ltol[d]
        for s in range(k):
            bad = False
            for r in range(clamp_rows.shape[0]):
                if states[d, s, clamp_rows[r]] < -tol:
                    bad = True
                    break
            if not bad:
                for r in range(cap_rows.shape[0]):
                    if states[d, s, cap_rows[r]] > cap_limits[r]:
                        bad = True
                        break
            if not bad:
                for r in range(debt_rows.shape[0]):
                    if states[d, s, debt_rows[r]] > -tol:
                        bad = True
                        break
            if not bad:
                for m in range(sat_c.shape[0]):
                    y = sat_c[m]
                    for t in range(sat_ptr[m], sat_ptr[m + 1]):
                        y = y + sat_wts[t] * states[d, s, sat_src[t]]
                    if (y < sat_lo[m] - sat_tol[m]
                            or y > sat_hi[m] + sat_tol[m]):
                        bad = True
                        break
            if bad:
                out[d] = s
                break
    return out


def _violated_at_loops(states, clamp_rows, cap_rows, cap_limits,
                       debt_rows, ltol, sat_ptr, sat_src, sat_wts,
                       sat_c, sat_lo, sat_hi, sat_tol):
    """Loop-shaped :func:`violated_at_numpy` (the ``@njit`` source)."""
    g = states.shape[0]
    out = np.zeros(g, dtype=np.bool_)
    for d in range(g):
        tol = ltol[d]
        bad = False
        for r in range(clamp_rows.shape[0]):
            if states[d, clamp_rows[r]] < -tol:
                bad = True
                break
        if not bad:
            for r in range(cap_rows.shape[0]):
                if states[d, cap_rows[r]] > cap_limits[r]:
                    bad = True
                    break
        if not bad:
            for r in range(debt_rows.shape[0]):
                if states[d, debt_rows[r]] > -tol:
                    bad = True
                    break
        if not bad:
            for m in range(sat_c.shape[0]):
                y = sat_c[m]
                for t in range(sat_ptr[m], sat_ptr[m + 1]):
                    y = y + sat_wts[t] * states[d, sat_src[t]]
                if (y < sat_lo[m] - sat_tol[m]
                        or y > sat_hi[m] + sat_tol[m]):
                    bad = True
                    break
        out[d] = bad
    return out


if _numba is not None:  # pragma: no cover - exercised on the numba CI leg
    first_hits = _numba.njit(cache=True)(_first_hits_loops)
    violated_at = _numba.njit(cache=True)(_violated_at_loops)
else:
    first_hits = first_hits_numpy
    violated_at = violated_at_numpy

#: Empty saturation-monitor pack (most regimes carry no saturation
#: functionals; sharing the empties avoids per-call allocations).
EMPTY_SAT = (np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64),
             np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0),
             np.zeros(0))
