"""Taps: rate-limited resource flow between reserves (paper §3.3).

A tap transfers a fixed quantity of resources between two reserves per
unit time.  It is "conceptually ... an efficient, special-purpose
thread whose only job is to transfer energy between reserves.  In
practice, transfers are executed in batch periodically" — which is
precisely what :meth:`Tap.flow` does once per engine tick.

Two rate types, matching the paper's API (``TAP_TYPE_CONST`` in
Figure 5) and §5.2.1:

* **constant** — ``rate`` joules per second, clamped to what the
  source holds.
* **proportional** — a fraction of the *source's* level per second.
  "Backward" proportional taps (Figure 6b) are ordinary proportional
  taps whose source is the application reserve and sink is the parent;
  the direction of the edge, not a special type, makes them backward.

Proportional flow integrates the continuous drain exactly,
``level * (1 - exp(-f * dt))``, so equilibria are tick-size
independent: a 70 mW constant tap feeding a reserve drained by a 0.1/s
backward tap settles at 700 mJ, the paper's example.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Optional

from ..errors import TapError
from ..kernel.labels import Label, NO_PRIVILEGES, PrivilegeSet
from ..kernel.objects import KernelObject, ObjectType
from .reserve import Reserve


class TapType(Enum):
    """Rate interpretation for a tap."""

    CONST = "const"                 # rate is units/second (watts)
    PROPORTIONAL = "proportional"   # rate is fraction of source/second


#: Aliases matching the C-style names in the paper's Figure 5.
TAP_TYPE_CONST = TapType.CONST
TAP_TYPE_PROPORTIONAL = TapType.PROPORTIONAL


class Tap(KernelObject):
    """A kernel object that moves resources source -> sink at a rate."""

    TYPE = ObjectType.TAP

    def __init__(
        self,
        source: Reserve,
        sink: Reserve,
        rate: float = 0.0,
        tap_type: TapType = TapType.CONST,
        label: Optional[Label] = None,
        privileges: PrivilegeSet = NO_PRIVILEGES,
        name: str = "",
    ) -> None:
        super().__init__(label=label, name=name)
        if source is sink:
            raise TapError("tap source and sink must differ")
        if source.kind != sink.kind:
            raise TapError(
                f"tap endpoints hold different resources "
                f"({source.kind} vs {sink.kind})")
        #: Set by the owning graph so rate/enabled/liveness changes
        #: invalidate its compiled FlowPlan (generation bump).
        self._graph_hook = None
        #: (accumulator array, index) while a compiled FlowPlan is
        #: live — vectorized steps bank flow there and the plan folds
        #: it back into ``_total_flowed`` on flush.
        self._flow_slot = None
        self.source = source
        self.sink = sink
        #: Privileges embedded at creation (§3.5): the tap can move
        #: resources between reserves its creator could access even when
        #: later observers cannot.
        self.privileges = privileges
        self._tap_type = tap_type
        self._rate = 0.0
        self.set_rate(rate, tap_type)
        self.enabled = True
        #: Cumulative units moved through this tap.
        self._total_flowed = 0.0

    @property
    def total_flowed(self) -> float:
        """Cumulative units moved through this tap."""
        slot = self._flow_slot
        if slot is None:
            return self._total_flowed
        return self._total_flowed + slot[0][slot[1]]

    @total_flowed.setter
    def total_flowed(self, value: float) -> None:
        slot = self._flow_slot
        if slot is None:
            self._total_flowed = value
        else:
            # Keep reads (base + accumulator) equal to ``value``.
            self._total_flowed = value - slot[0][slot[1]]

    # -- configuration -----------------------------------------------------------

    @property
    def rate(self) -> float:
        """Units/second (CONST) or fraction/second (PROPORTIONAL)."""
        return self._rate

    @property
    def tap_type(self) -> TapType:
        """CONST or PROPORTIONAL; mutation recompiles compiled plans."""
        return self._tap_type

    @tap_type.setter
    def tap_type(self, value: TapType) -> None:
        if value is self._tap_type:
            return  # no-op writes must not invalidate compiled plans
        self._tap_type = value
        if self._graph_hook is not None:
            self._graph_hook()

    @property
    def enabled(self) -> bool:
        """Whether the tap currently flows (a disabled tap is a no-op)."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        if getattr(self, "_enabled", None) == value:
            return  # no-op writes must not invalidate compiled plans
        self._enabled = value
        if self._graph_hook is not None:
            self._graph_hook()

    def set_rate(self, rate: float, tap_type: Optional[TapType] = None) -> None:
        """Reconfigure the tap (``tap_set_rate`` in Figure 5).

        The task manager uses exactly this to bounce an application's
        foreground tap between 0 and full rate (§5.4).
        """
        self.ensure_alive()
        if tap_type is not None:
            self.tap_type = tap_type  # setter bumps only on change
        if rate < 0:
            raise TapError("tap rate must be non-negative")
        if self.tap_type is TapType.PROPORTIONAL and rate > 1.0:
            raise TapError(
                f"proportional tap rate {rate} exceeds 1.0/second")
        rate = float(rate)
        if rate == self._rate:
            return  # re-applying the current rate keeps the plan valid
        self._rate = rate
        if self._graph_hook is not None:
            self._graph_hook()

    # -- flow --------------------------------------------------------------------

    def amount_for(self, dt: float) -> float:
        """How much this tap would move over ``dt`` seconds, pre-clamp."""
        if dt < 0:
            raise TapError("dt must be non-negative")
        if not self.enabled or self._rate == 0.0:
            return 0.0
        available = max(0.0, self.source.level)
        if self.tap_type is TapType.CONST:
            return min(self._rate * dt, available)
        # Exact integral of dL/dt = -f * L over dt.
        return available * (1.0 - math.exp(-self._rate * dt))

    def flow(self, dt: float) -> float:
        """Execute one batch transfer; returns the amount moved.

        Never drives the source into debt; respects the sink's
        capacity (unaccepted remainder stays at the source).
        """
        self.ensure_alive()
        if not (self.source.alive and self.sink.alive):
            # A tap whose endpoint died is garbage; stop flowing.
            self.enabled = False
            return 0.0
        amount = self.amount_for(dt)
        if amount <= 0.0:
            return 0.0
        moved = self.source.transfer_to(self.sink, amount)
        self.total_flowed += moved
        return moved

    # -- misc -------------------------------------------------------------------

    def on_delete(self) -> None:
        self.enabled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        unit = "u/s" if self.tap_type is TapType.CONST else "/s"
        return (f"<tap #{self.object_id} {self.name!r} "
                f"{self.source.name!r}->{self.sink.name!r} "
                f"{self._rate:.6g}{unit}>")
