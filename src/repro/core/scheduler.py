"""The energy-aware CPU scheduler (paper §3.2).

"Cinder's CPU scheduler is energy-aware and allows a thread to run
only when at least one of its energy reserves is not empty.  Threads
that have depleted their energy reserves cannot run.  Tying energy
reserves to the scheduler prevents new spending, which is sufficient
to throttle energy consumption."

Model: a single CPU, round-robin over *eligible* threads.  Each engine
tick the scheduler picks the next eligible thread, runs it for the
quantum, and charges ``cpu_active_power * quantum`` to the thread's
active reserve (into bounded debt if the level was merely positive —
the debt is repaid by the thread's taps before it becomes eligible
again).  This duty-cycling is what turns a 68 mW tap into a ~50 % CPU
share of a 137 mW CPU in Figure 9, without the scheduler knowing
anything about taps.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import SchedulerError
from ..kernel.thread_obj import Thread, ThreadState
from .accounting import ConsumptionLedger


class EnergyAwareScheduler:
    """Round-robin, single-CPU, reserve-gated scheduler."""

    def __init__(self, cpu_active_power: float,
                 ledger: Optional[ConsumptionLedger] = None) -> None:
        if cpu_active_power < 0:
            raise SchedulerError("CPU power must be non-negative")
        self.cpu_active_power = cpu_active_power
        self.ledger = ledger
        self._threads: List[Thread] = []
        self._next_index = 0
        #: Seconds the CPU spent running anything (utilization numerator).
        self.busy_time = 0.0
        #: Total seconds stepped (utilization denominator).
        self.total_time = 0.0

    # -- thread management ---------------------------------------------------------

    def add_thread(self, thread: Thread) -> None:
        """Register a thread with the scheduler."""
        if thread in self._threads:
            raise SchedulerError(f"thread {thread.name!r} already registered")
        self._threads.append(thread)

    def remove_thread(self, thread: Thread) -> None:
        """Unregister a thread (dead or migrated)."""
        if thread in self._threads:
            index = self._threads.index(thread)
            self._threads.remove(thread)
            if index < self._next_index:
                self._next_index -= 1
            if self._threads:
                self._next_index %= len(self._threads)
            else:
                self._next_index = 0

    @property
    def threads(self) -> List[Thread]:
        """Registered threads (copy)."""
        return list(self._threads)

    # -- eligibility ------------------------------------------------------------------

    @staticmethod
    def _wants_cpu(thread: Thread) -> bool:
        return thread.alive and thread.state in (
            ThreadState.RUNNABLE, ThreadState.THROTTLED)

    def eligible(self, thread: Thread, quantum_cost: float = 0.0) -> bool:
        """Runnable *and* fueled.

        The paper's rule is "at least one of its energy reserves is
        not empty" (§3.2); at quantum granularity the faithful discrete
        reading is *can pay for the next quantum* — otherwise a thread
        oscillating through debt would starve taps that draw from its
        reserve (Figure 9's B1/B2 are fed from B's reserve while B
        spins).
        """
        if not self._wants_cpu(thread):
            return False
        if quantum_cost <= 0.0:
            return thread.has_energy()
        return any(r.alive and r.level >= quantum_cost
                   for r in thread.reserves)

    def runnable_threads(self, quantum_cost: float = 0.0) -> List[Thread]:
        """Threads that would be considered this tick."""
        return [t for t in self._threads if self.eligible(t, quantum_cost)]

    def any_wants_cpu(self) -> bool:
        """True if any thread is RUNNABLE or THROTTLED.

        A THROTTLED thread counts: its reserve may refill mid-span, so
        the engine must not fast-forward past the instant it becomes
        eligible again.
        """
        return any(self._wants_cpu(t) for t in self._threads)

    # -- the tick -----------------------------------------------------------------------

    def pick(self, quantum_cost: float = 0.0) -> Optional[Thread]:
        """Round-robin choice among eligible threads (None if all are dry)."""
        count = len(self._threads)
        if count == 0:
            return None
        for offset in range(count):
            index = (self._next_index + offset) % count
            thread = self._threads[index]
            if self.eligible(thread, quantum_cost):
                self._next_index = (index + 1) % count
                return thread
        return None

    def step(self, dt: float) -> Optional[Thread]:
        """Run one quantum of ``dt`` seconds; returns the thread run.

        Also flips threads between RUNNABLE and THROTTLED so observers
        (and the task-manager app) can see who is energy-starved.
        """
        if dt < 0:
            raise SchedulerError("dt must be non-negative")
        self.total_time += dt
        cost = self.cpu_active_power * dt
        for thread in self._threads:
            if not self._wants_cpu(thread):
                continue
            thread.state = (ThreadState.RUNNABLE
                            if self.eligible(thread, cost)
                            else ThreadState.THROTTLED)
        chosen = self.pick(cost)
        if chosen is None:
            return None
        chosen.charge(cost)
        chosen.cpu_time += dt
        self.busy_time += dt
        if self.ledger is not None:
            self.ledger.record(principal=chosen.name or f"t{chosen.object_id}",
                               component="cpu", joules=cost)
        return chosen

    def advance_idle(self, seconds: float) -> None:
        """Account a fast-forwarded span in which no thread could run.

        Equivalent to ``seconds / dt`` consecutive :meth:`step` calls
        that all returned None: only the utilization denominator moves.
        """
        if seconds < 0:
            raise SchedulerError("idle span must be non-negative")
        self.total_time += seconds

    # -- statistics -----------------------------------------------------------------------

    @property
    def utilization(self) -> float:
        """Fraction of stepped time the CPU was busy."""
        if self.total_time == 0.0:
            return 0.0
        return self.busy_time / self.total_time
