"""Lifetime budgeting: from a target battery life to tap rates.

The paper's introduction motivates Cinder with exactly this:
"today's systems cannot do something as simple as controlling email
polling to ensure a full day of device use."  With reserves and taps
the planning problem becomes arithmetic: a device that must last
`T` seconds on `E` joules may hand out at most `E/T - P_baseline`
watts of discretionary power, and a tap enforces each grant.

:class:`LifetimeBudget` solves the allocation: fixed-rate grants are
honored first, weighted grants split the remainder, and
:meth:`LifetimeBudget.apply` wires the corresponding reserves and taps
into a resource graph.  :func:`poll_interval_for` answers the email
question directly — the fastest polling interval a given power income
can sustain through netd's activation gating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import EnergyError
from .graph import ResourceGraph
from .policy import RateLimitedChild, rate_limit
from .reserve import Reserve


@dataclass(frozen=True)
class Grant:
    """One application's requested share of the budget."""

    name: str
    #: Fixed watts (exact) or None for a weighted share.
    watts: Optional[float] = None
    #: Weight for splitting the post-fixed remainder.
    weight: float = 1.0


@dataclass
class PlannedAllocation:
    """A solved allocation: name -> watts."""

    target_lifetime_s: float
    discretionary_watts: float
    rates: Dict[str, float] = field(default_factory=dict)

    @property
    def total_allocated_watts(self) -> float:
        return sum(self.rates.values())

    def lifetime_with_baseline(self, battery_joules: float,
                               baseline_watts: float) -> float:
        """Worst-case lifetime if every grant is fully spent."""
        draw = baseline_watts + self.total_allocated_watts
        if draw <= 0:
            return float("inf")
        return battery_joules / draw


class LifetimeBudget:
    """Solve tap rates from a target lifetime.

    ``baseline_watts`` is the undelegatable platform draw over the
    planning horizon (for a mostly-suspended phone this is the suspend
    draw, not the 699 mW awake idle).
    """

    def __init__(self, battery_joules: float, target_lifetime_s: float,
                 baseline_watts: float = 0.0,
                 safety_margin: float = 0.05) -> None:
        if battery_joules <= 0 or target_lifetime_s <= 0:
            raise EnergyError("battery and lifetime must be positive")
        if not 0.0 <= safety_margin < 1.0:
            raise EnergyError("safety margin must be in [0, 1)")
        self.battery_joules = battery_joules
        self.target_lifetime_s = target_lifetime_s
        self.baseline_watts = baseline_watts
        self.safety_margin = safety_margin
        self._grants: List[Grant] = []

    @property
    def discretionary_watts(self) -> float:
        """Power available to applications after baseline and margin."""
        total = self.battery_joules / self.target_lifetime_s
        available = total * (1.0 - self.safety_margin) - self.baseline_watts
        return max(0.0, available)

    # -- building the plan ---------------------------------------------------------

    def grant(self, name: str, watts: Optional[float] = None,
              weight: float = 1.0) -> "LifetimeBudget":
        """Add an application (chainable)."""
        if any(g.name == name for g in self._grants):
            raise EnergyError(f"grant {name!r} already exists")
        if watts is not None and watts < 0:
            raise EnergyError("fixed grants must be non-negative")
        if weight < 0:
            raise EnergyError("weights must be non-negative")
        self._grants.append(Grant(name, watts, weight))
        return self

    def solve(self) -> PlannedAllocation:
        """Allocate: fixed grants first, weights split the rest.

        Raises :class:`EnergyError` if the fixed grants alone exceed
        the discretionary budget — the planner refuses plans that
        cannot meet the lifetime target.
        """
        budget = self.discretionary_watts
        fixed = sum(g.watts for g in self._grants if g.watts is not None)
        if fixed > budget * (1.0 + 1e-9):
            raise EnergyError(
                f"fixed grants ({fixed:.4g} W) exceed the discretionary "
                f"budget ({budget:.4g} W) for a "
                f"{self.target_lifetime_s:.0f} s lifetime")
        remainder = budget - fixed
        total_weight = sum(g.weight for g in self._grants
                           if g.watts is None)
        plan = PlannedAllocation(self.target_lifetime_s, budget)
        for g in self._grants:
            if g.watts is not None:
                plan.rates[g.name] = g.watts
            elif total_weight > 0:
                plan.rates[g.name] = remainder * g.weight / total_weight
            else:
                plan.rates[g.name] = 0.0
        return plan

    def apply(self, graph: ResourceGraph,
              source: Optional[Reserve] = None
              ) -> Dict[str, RateLimitedChild]:
        """Wire the solved plan into ``graph`` as reserves + taps."""
        plan = self.solve()
        parent = source if source is not None else graph.root
        children = {}
        for name, watts in plan.rates.items():
            children[name] = rate_limit(graph, parent, watts, name=name)
        return children


def poll_interval_for(income_watts: float, activation_joules: float = 9.5,
                      margin: float = 1.25,
                      data_joules: float = 0.0,
                      sharers: int = 1) -> float:
    """The fastest sustainable poll interval for a background daemon.

    A poll through netd costs ``margin * activation + data`` joules
    when the radio is idle; ``sharers`` daemons pooling (Figure 13b)
    split the activation.  Income must cover one poll per interval:

        interval = (margin * activation / sharers + data) / income
    """
    if income_watts <= 0:
        return float("inf")
    if sharers < 1:
        raise EnergyError("sharers must be >= 1")
    per_poll = margin * activation_joules / sharers + data_joules
    return per_poll / income_watts


def income_for_poll_interval(interval_s: float,
                             activation_joules: float = 9.5,
                             margin: float = 1.25,
                             data_joules: float = 0.0,
                             sharers: int = 1) -> float:
    """Inverse of :func:`poll_interval_for`: required tap rate."""
    if interval_s <= 0:
        raise EnergyError("interval must be positive")
    per_poll = margin * activation_joules / sharers + data_joules
    return per_poll / interval_s
