"""Global resource decay: the anti-hoarding backstop (paper §5.2.2).

"Cinder prevents hoarding by imposing a global, long-term decay of
resources across all reserves; every reserve has an implicit
proportional backward tap to the battery.  By default, Cinder is
configured to leak 50% of reserve resources after a period of 10
minutes."

We implement the implicit tap as a continuous exponential: over ``dt``
seconds a non-exempt reserve loses ``1 - exp(-lambda * dt)`` of its
level, with ``lambda = ln 2 / half_life``, and the proceeds return to
the root reserve.  Continuous form means the configured half-life is
honoured for any engine tick size.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from ..errors import EnergyError
from .reserve import Reserve

#: Paper default: 50 % leak over 10 minutes.
DEFAULT_HALF_LIFE_S = 600.0


class DecayPolicy:
    """The system-wide implicit backward tap."""

    def __init__(self, half_life_s: float = DEFAULT_HALF_LIFE_S,
                 enabled: bool = True) -> None:
        if half_life_s <= 0:
            raise EnergyError("half-life must be positive")
        self.half_life_s = half_life_s
        self.enabled = enabled
        #: Cumulative units reclaimed to the root.
        self.total_reclaimed = 0.0

    @property
    def half_life_s(self) -> float:
        """The configured 50 %-leak period in seconds."""
        return self._half_life_s

    @half_life_s.setter
    def half_life_s(self, value: float) -> None:
        if value <= 0:
            raise EnergyError("half-life must be positive")
        self._half_life_s = value
        # Cached: the hot tick path reads lam every round.
        self._lam = math.log(2.0) / value

    @property
    def lam(self) -> float:
        """The continuous decay constant lambda = ln 2 / half-life."""
        return self._lam

    def fraction_for(self, dt: float) -> float:
        """Fraction of a reserve's level leaked over ``dt`` seconds."""
        if dt < 0:
            raise EnergyError("dt must be non-negative")
        if not self.enabled or dt == 0:
            return 0.0
        return 1.0 - math.exp(-self.lam * dt)

    def apply(self, reserves: Iterable[Reserve], root: Optional[Reserve],
              dt: float) -> float:
        """Leak every non-exempt reserve toward ``root``; returns total.

        The root itself never decays (it *is* the battery).  If
        ``root`` is None the energy is dropped — only used by tests
        that check the leak rate in isolation.
        """
        fraction = self.fraction_for(dt)
        if fraction == 0.0:
            return 0.0
        reclaimed = 0.0
        for reserve in reserves:
            if not reserve.alive or reserve is root:
                continue
            lost = reserve.decay(fraction)
            if lost > 0.0 and root is not None:
                root.deposit(lost)
            reclaimed += lost
        self.total_reclaimed += reclaimed
        return reclaimed
