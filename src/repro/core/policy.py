"""Reusable policy fragments built from reserves and taps.

The paper's application sections (§5.1–5.4) repeatedly wire the same
small sub-graphs: a rate-limited child (energywrap, Figure 1), a
shared-when-idle child (Figure 6b's constant-in / proportional-back
pair), and the foreground/background dual-tap arrangement (Figure 7).
These helpers build those shapes so applications and tests state the
policy, not the plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..kernel.labels import Label
from .graph import ResourceGraph
from .reserve import Reserve
from .tap import Tap, TapType


@dataclass
class RateLimitedChild:
    """A child reserve fed from a parent at a fixed rate (Figure 1)."""

    reserve: Reserve
    tap: Tap


def rate_limit(graph: ResourceGraph, parent: Reserve, watts: float,
               name: str = "", label: Optional[Label] = None
               ) -> RateLimitedChild:
    """Create a reserve fed by a constant ``watts`` tap from ``parent``.

    This is exactly what ``energywrap`` builds before exec'ing its
    target (Figure 5).
    """
    reserve = graph.create_reserve(name=name or "limited", label=label)
    tap = graph.create_tap(parent, reserve, watts, TapType.CONST,
                           name=f"{reserve.name}.in", label=label)
    return RateLimitedChild(reserve, tap)


@dataclass
class SharedChild:
    """Figure 6b: constant feed plus proportional backflow.

    The child may draw up to ``watts`` on average, can burst from the
    accumulated level, but returns unused energy to the parent; at
    equilibrium the reserve holds ``watts / back_fraction`` joules
    (700 mJ for 70 mW and 0.1/s in the paper).
    """

    reserve: Reserve
    forward: Tap
    backward: Tap

    @property
    def equilibrium_level(self) -> float:
        """Level at which backflow exactly cancels the feed."""
        if self.backward.rate == 0.0:
            return float("inf")
        return self.forward.rate / self.backward.rate


def shared_rate_limit(graph: ResourceGraph, parent: Reserve, watts: float,
                      back_fraction: float = 0.1, name: str = "",
                      label: Optional[Label] = None) -> SharedChild:
    """Create the Figure 6b sub-graph under ``parent``."""
    reserve = graph.create_reserve(name=name or "shared", label=label)
    forward = graph.create_tap(parent, reserve, watts, TapType.CONST,
                               name=f"{reserve.name}.in", label=label)
    backward = graph.create_tap(reserve, parent, back_fraction,
                                TapType.PROPORTIONAL,
                                name=f"{reserve.name}.back", label=label)
    return SharedChild(reserve, forward, backward)


@dataclass
class ForegroundBackgroundSlot:
    """Figure 7: one application's dual-fed reserve.

    ``background`` always flows; ``foreground`` is 0 while backgrounded
    and raised by the task manager when the app is brought forward.
    """

    reserve: Reserve
    foreground: Tap
    background: Tap

    def bring_to_foreground(self, watts: float) -> None:
        """Open the foreground tap at ``watts``."""
        self.foreground.set_rate(watts)

    def send_to_background(self) -> None:
        """Close the foreground tap (rate 0); background tap still flows."""
        self.foreground.set_rate(0.0)

    @property
    def in_foreground(self) -> bool:
        """True if the foreground tap is currently open."""
        return self.foreground.rate > 0.0


def foreground_background_slot(
    graph: ResourceGraph,
    foreground_pool: Reserve,
    background_pool: Reserve,
    name: str = "",
    label: Optional[Label] = None,
) -> ForegroundBackgroundSlot:
    """Wire one app into the Figure 7 foreground/background scheme.

    The app's reserve starts backgrounded (foreground tap at 0); the
    background tap's rate is owned by the task manager, which divides
    the background pool's feed among the resident apps.
    """
    reserve = graph.create_reserve(name=name or "app", label=label)
    foreground = graph.create_tap(foreground_pool, reserve, 0.0,
                                  TapType.CONST,
                                  name=f"{reserve.name}.fg", label=label)
    background = graph.create_tap(background_pool, reserve, 0.0,
                                  TapType.CONST,
                                  name=f"{reserve.name}.bg", label=label)
    return ForegroundBackgroundSlot(reserve, foreground, background)
