"""The span tier: closed-form integration of event-free spans.

:class:`~repro.core.flowplan.FlowPlan` owns the *tick kernel* — one
vectorized batch round, exactly equivalent to sequential per-object
firing.  This module owns the other execution mode: integrating the
continuous dynamics of a whole event-free span in one shot (the
engine's idle fast-forward).  The two tiers share the compiled
topology snapshot but solve different problems, so they live in
different files.

Per reserve the continuous dynamics are linear::

    L' = A @ L + b

where ``b`` collects the constant taps (``const_in - const_out``) and
``A`` collects everything proportional: each proportional tap of rate
``f`` from reserve ``s`` to ``k`` contributes ``-f`` to ``A[s, s]``
and ``+f`` to ``A[k, s]``, and the global decay contributes ``-lam``
to every non-exempt diagonal with ``+lam`` routed to the root's row.

Two solvers, picked per call:

* **diagonal** — when no proportional tap feeds a reserve that itself
  drains proportionally (``A`` is effectively diagonal after dropping
  rows that only *receive*), each reserve solves independently:
  ``L(t) = steady + (L0 - steady) * exp(-F t)``.  This is the scalar
  closed form from PR 1, kept verbatim as the fast tier — it is a few
  numpy vector ops with no linear algebra.
* **coupled** — chained topologies (the paper's subdivision trees,
  ``clone_reserve`` backpressure, netd/GPS reserve trees) make ``A``
  genuinely triangular-or-worse.  The system is integrated with a
  matrix exponential: an eigendecomposition of ``A`` when it is
  well-conditioned (one factorization per topology epoch, then each
  span is a couple of matrix-vector products), falling back to
  scaling-and-squaring Padé on the augmented matrix when ``A`` is
  defective (equal-rate chains produce Jordan blocks) or its
  eigenbasis is ill-conditioned.  Per-reserve *time integrals*
  ``J = ∫ L dt`` come out of the same solve (phi-functions on the
  eigenvalue path, state augmentation on the Padé path) and give every
  proportional tap's exact integrated flow ``rate * J[src]`` — levels
  are then committed by **mass balance** from those flows, so
  conservation is exact by construction no matter what the linear
  algebra rounded.

Refusal stays sound without refusing the whole shape class: the solver
bounds each trajectory's minimum (the inflow-free monotone lower bound
— if a constant drain could clamp mid-span the span is refused) and
its maximum (level plus every inflow bound integrated over the span —
if a finite capacity could bind the span is refused).  A refused span
mutates nothing; the caller ticks instead.  Debt entry (any negative
level) always refuses: repayment is tick-granular.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .flowplan import FlowPlan

#: Test hook: force the scaling-and-squaring path even when the
#: eigendecomposition is healthy, so both expm code paths stay covered.
FORCE_DENSE_EXPM = False

#: Eigenbasis condition number above which eigendecomposition results
#: are not trusted (defective or nearly-defective ``A``).
EIG_COND_LIMIT = 1e8

#: Span-end negativity beyond float noise aborts the solve (the sound
#: bounds should make this unreachable; refuse rather than guess).
NEGATIVE_LEVEL_SLACK = 1e-6


def _expm(a: np.ndarray) -> np.ndarray:
    """Matrix exponential: scaling-and-squaring with a [13/13] Padé.

    The classic Higham recipe, simplified to the highest-order
    approximant only (these matrices are small — a reserve graph's
    live topology — so the sub-order early exits are not worth their
    bookkeeping).  numpy-only by construction: scipy is not a
    dependency of this package.
    """
    n = a.shape[0]
    norm = np.linalg.norm(a, 1)
    theta13 = 5.371920351148152
    squarings = 0
    if norm > theta13:
        squarings = int(math.ceil(math.log2(norm / theta13)))
        a = a / (2.0 ** squarings)
    b = (64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
         1187353796428800.0, 129060195264000.0, 10559470521600.0,
         670442572800.0, 33522128640.0, 1323241920.0, 40840800.0,
         960960.0, 16380.0, 182.0, 1.0)
    ident = np.eye(n)
    a2 = a @ a
    a4 = a2 @ a2
    a6 = a2 @ a4
    u = a @ (a6 @ (b[13] * a6 + b[11] * a4 + b[9] * a2)
             + b[7] * a6 + b[5] * a4 + b[3] * a2 + b[1] * ident)
    v = (a6 @ (b[12] * a6 + b[10] * a4 + b[8] * a2)
         + b[6] * a6 + b[4] * a4 + b[2] * a2 + b[0] * ident)
    r = np.linalg.solve(v - u, v + u)
    for _ in range(squarings):
        r = r @ r
    return r


def _phi1(z: np.ndarray) -> np.ndarray:
    """``(e^z - 1) / z`` with the removable singularity handled."""
    out = np.ones_like(z)
    small = np.abs(z) < 1e-3
    zl = z[~small]
    out[~small] = (np.exp(zl) - 1.0) / zl
    zs = z[small]
    out[small] = 1.0 + zs / 2.0 + zs * zs / 6.0 + zs ** 3 / 24.0
    return out


def _phi2(z: np.ndarray) -> np.ndarray:
    """``(e^z - 1 - z) / z^2`` with the removable singularity handled."""
    out = np.full_like(z, 0.5)
    small = np.abs(z) < 1e-3
    zl = z[~small]
    out[~small] = (np.exp(zl) - 1.0 - zl) / (zl * zl)
    zs = z[small]
    out[small] = 0.5 + zs / 6.0 + zs * zs / 24.0 + zs ** 3 / 120.0
    return out


class CoupledSystem:
    """``L' = A L + b`` for one topology epoch at one decay constant.

    Built once per (plan, lam) and cached on the :class:`SpanTier`:
    the expensive part — the eigendecomposition, or per-span Padé
    exponentials of the augmented matrix — amortizes across every span
    the epoch serves.
    """

    def __init__(self, tier: "SpanTier", lam: float) -> None:
        plan = tier.plan
        n = len(plan.reserves)
        a = np.zeros((n, n))
        for j in plan.prop_taps:
            s, k, f = int(plan.src[j]), int(plan.snk[j]), plan.rate[j]
            a[s, s] -= f
            a[k, s] += f
        if lam > 0.0 and plan.any_decayable:
            decayable = np.flatnonzero(plan.decay_mask)
            a[decayable, decayable] -= lam
            a[plan.root_index, decayable] += lam
        self.a = a
        self.b = tier.const_in - tier.const_out
        self.n = n
        #: (eigenvalues, V, V^-1) when the eigenbasis is trusted.
        self.eig: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        #: span -> expm of the augmented matrix (Padé fallback path).
        self._dense_cache: Dict[float, np.ndarray] = {}
        #: Telemetry/testing: which solve path this system uses.
        self.mode = "dense"
        if not FORCE_DENSE_EXPM:
            self._try_eig()

    def _try_eig(self) -> None:
        try:
            w, v = np.linalg.eig(self.a)
            cond = np.linalg.cond(v)
            if not np.isfinite(cond) or cond > EIG_COND_LIMIT:
                return
            vinv = np.linalg.inv(v)
        except np.linalg.LinAlgError:  # pragma: no cover - numpy internal
            return
        # Trust the basis only if it actually reconstructs A: a nearly
        # defective matrix can pass the condition gate yet round badly.
        scale = max(1.0, float(np.abs(self.a).max()))
        recon = (v * w) @ vinv
        if float(np.abs(recon - self.a).max()) > 1e-9 * scale:
            return
        self.eig = (w, v, vinv)
        self.mode = "eig"

    def propagate(self, lvl: np.ndarray,
                  span: float) -> Tuple[np.ndarray, np.ndarray]:
        """``(L(span), J(span))`` where ``J = ∫_0^span L dt``."""
        if self.eig is not None:
            w, v, vinv = self.eig
            c0 = vinv @ lvl
            cb = vinv @ self.b
            z = w * span
            ez = np.exp(z)
            p1 = _phi1(z)
            p2 = _phi2(z)
            end = (v @ (ez * c0 + span * (p1 * cb))).real
            integ = (v @ (span * (p1 * c0)
                          + (span * span) * (p2 * cb))).real
            return end, integ
        propagator = self._dense_cache.get(span)
        if propagator is None:
            n = self.n
            m = np.zeros((2 * n + 1, 2 * n + 1))
            m[:n, :n] = self.a
            m[:n, n] = self.b
            m[n + 1:, :n] = np.eye(n)
            propagator = _expm(m * span)
            if len(self._dense_cache) > 32:  # unbounded-span safety valve
                self._dense_cache.clear()
            self._dense_cache[span] = propagator
        n = self.n
        state = np.concatenate([lvl, [1.0], np.zeros(n)])
        result = propagator @ state
        return result[:n], result[n + 1:]


class SpanTier:
    """Closed-form span execution over one compiled plan's topology."""

    def __init__(self, plan: "FlowPlan") -> None:
        self.plan = plan
        n = len(plan.reserves)
        self.const_in = np.zeros(n)
        self.const_out = np.zeros(n)
        self.prop_out = np.zeros(n)
        self.prop_sink_mask = np.zeros(n, dtype=bool)
        first_drain: Dict[int, int] = {}
        for j in range(len(plan.taps)):
            s, k, r = int(plan.src[j]), int(plan.snk[j]), plan.rate[j]
            if plan.const_mask[j]:
                self.const_out[s] += r
                self.const_in[k] += r
                first_drain.setdefault(s, j)
            else:
                self.prop_out[s] += r
                self.prop_sink_mask[k] = True
        #: Constant feeds that land *before* their sink's first
        #: constant drain in creation order: ``(sink, source, rate)``.
        #: Within every tick these deposit ahead of the drain, so —
        #: provided the feed's own source cannot clamp — they are
        #: guaranteed income the clamp bound may credit (the
        #: pass-through shapes: task-manager pools, relay junctions).
        self.early_feeds = [
            (int(plan.snk[j]), int(plan.src[j]), plan.rate[j])
            for j in range(len(plan.taps))
            if plan.const_mask[j]
            and j < first_drain.get(int(plan.snk[j]), len(plan.taps))]
        #: lam -> the coupled linear system at that decay constant.
        self._coupled: Dict[float, CoupledSystem] = {}
        #: Telemetry: spans solved by each tier (diagnostics/tests).
        self.diagonal_solves = 0
        self.coupled_solves = 0

    # -- shared refusal bounds ---------------------------------------------------

    def _clamp_safe_rows(self, lvl: np.ndarray, span: float,
                         f: np.ndarray, linear: np.ndarray
                         ) -> np.ndarray:
        """Per-row ``True`` iff no constant drain can clamp in the span.

        ``lvl`` is stacked ``(d, n)``.  First pass: ``L' >= -const_out
        - F*L`` (every inflow ignored) is monotone decreasing, so the
        span-end value of that lower-bound ODE bounds the whole
        trajectory.  Sound for coupled systems too: coupling only
        ever *adds* inflow.

        Reserves that fail the inflow-free bound get a refined pass:
        constant feeds that fire *before* the reserve's first drain
        within every tick (:attr:`early_feeds`), and whose own source
        is already proven clamp-free, are guaranteed income — the
        effective drain is only the deficit beyond them.  This is
        what admits pass-through shapes (a junction fed at 14 mW and
        drained at 14 mW sits at level ~0 forever, which the
        inflow-free bound can never clear) while staying exactly as
        sound: each iterate credits only feeds from reserves proven
        safe by the previous iterate, and tick execution delivers
        those deposits ahead of the drain by creation order.
        """
        d, n = lvl.shape
        const_out = self.const_out
        draining = const_out > 0.0
        if not draining.any():
            return np.ones(d, dtype=bool)
        per_f = np.divide(const_out, f, out=np.zeros(n), where=linear)
        decay_f = np.exp(-f * span)
        lower = np.where(linear,
                         lvl * decay_f - per_f * (1.0 - decay_f),
                         lvl - const_out * span)
        safe = (lower >= 0.0) | ~draining
        rows_ok = safe.all(axis=1)
        if rows_ok.all() or not self.early_feeds:
            return rows_ok
        for _ in range(3):
            guaranteed = np.zeros((d, n))
            for snk, src, rate in self.early_feeds:
                guaranteed[:, snk] += rate * safe[:, src]
            deficit = np.maximum(const_out - guaranteed, 0.0)
            per_f = np.divide(deficit, f, out=np.zeros((d, n)),
                              where=linear)
            lower = np.where(linear,
                             lvl * decay_f - per_f * (1.0 - decay_f),
                             lvl - deficit * span)
            refined = (lower >= 0.0) | ~draining
            if (refined == safe).all():
                break
            safe = refined  # monotone: deficit only shrinks
        return safe.all(axis=1)

    def _clamp_bound_ok(self, lvl: np.ndarray, span: float,
                        f: np.ndarray, linear: np.ndarray) -> bool:
        """Scalar entry point over :meth:`_clamp_safe_rows`."""
        return bool(self._clamp_safe_rows(lvl[None, :], span, f,
                                          linear)[0])

    # -- entry point ---------------------------------------------------------------

    def execute(self, span: float) -> Optional[float]:
        """Integrate flows and decay over ``span`` seconds in one shot.

        Returns total tap flow, or None when no closed form applies
        (caller must tick instead); a None return mutates nothing.
        """
        plan = self.plan
        n = len(plan.reserves)
        policy = plan.graph.decay_policy
        lam = policy.lam if policy.enabled else 0.0
        lvl = plan._gather_levels()
        if np.any(lvl < 0.0):
            return None  # debt repayment is tick-granular
        f = self.prop_out + (lam if lam > 0.0 else 0.0) * plan.decay_mask
        linear = f > 0.0
        # Reserves whose drains read their level need constant inflow
        # for the *diagonal* solver; anything else is a coupled system.
        varying_in = self.prop_sink_mask.copy()
        if lam > 0.0 and plan.any_decayable:
            varying_in[plan.root_index] = True
        if np.any(linear & varying_in):
            return self._execute_coupled(span, lam, lvl, f, linear)
        # Capacity clamping has no closed form; require open headroom.
        if plan.finite_cap.size:
            cap_idx = plan.finite_cap
            gets_inflow = (self.const_in[cap_idx] > 0.0) | varying_in[cap_idx]
            if np.any(gets_inflow):
                return None
        if not self._clamp_bound_ok(lvl, span, f, linear):
            return None
        return self._execute_diagonal(span, lam, lvl, f, linear)

    # -- the diagonal fast tier (PR 1's scalar closed form, verbatim) --------------

    def _execute_diagonal(self, span: float, lam: float, lvl: np.ndarray,
                          f: np.ndarray, linear: np.ndarray
                          ) -> Optional[float]:
        plan = self.plan
        n = len(plan.reserves)
        decay_f = np.exp(-f * span)  # == 1 exactly where F == 0
        net_const = self.const_in - self.const_out
        steady = np.divide(net_const, f, out=np.zeros(n), where=linear)
        end = np.where(linear, steady + (lvl - steady) * decay_f,
                       lvl + net_const * span)
        # Mass balance: everything a linear reserve lost to its
        # proportional drains and decay over the span.
        drain = np.where(linear, lvl - end + net_const * span, 0.0)
        drain = np.maximum(drain, 0.0)

        moved = np.zeros(len(plan.taps))
        if plan.const_taps.size:
            moved[plan.const_taps] = plan.rate[plan.const_taps] * span
        if plan.prop_taps.size:
            psrc = plan.src[plan.prop_taps]
            share = np.divide(plan.rate[plan.prop_taps], f[psrc],
                              out=np.zeros(plan.prop_taps.size),
                              where=f[psrc] > 0)
            moved[plan.prop_taps] = drain[psrc] * share
            end += np.bincount(plan.snk[plan.prop_taps],
                               weights=moved[plan.prop_taps], minlength=n)
        lost = np.zeros(n)
        reclaimed = 0.0
        if lam > 0.0 and plan.any_decayable:
            lost = np.where(linear & plan.decay_mask,
                            drain * np.divide(lam, f, out=np.zeros(n),
                                              where=linear), 0.0)
            reclaimed = float(lost.sum())
            end[plan.root_index] += reclaimed
        self.diagonal_solves += 1
        return self._commit(end, moved, lost, reclaimed)

    # -- the coupled tier (matrix exponential) --------------------------------------

    def _execute_coupled(self, span: float, lam: float, lvl: np.ndarray,
                         f: np.ndarray, linear: np.ndarray
                         ) -> Optional[float]:
        plan = self.plan
        n = len(plan.reserves)
        # Capacity pressure: bound each trajectory's maximum.  Since
        # mass is conserved and levels stay non-negative, every level
        # is bounded by the total mass; refining through
        # ``U <- lvl + span * (const_in + P_prop @ U)`` keeps a sound
        # pointwise bound at each iterate (inflow integrated at the
        # previous bound, outflow ignored), and the elementwise best
        # over a few iterates is tight enough for realistic headroom.
        if plan.finite_cap.size:
            cap_idx = plan.finite_cap
            mass = float(lvl.sum())  # all levels >= 0 here
            psrc = plan.src[plan.prop_taps]
            psnk = plan.snk[plan.prop_taps]
            prate = plan.rate[plan.prop_taps]
            best = np.full(n, mass)
            for _ in range(6):
                inflow = self.const_in.copy()
                if prate.size:
                    inflow += np.bincount(psnk, weights=prate * best[psrc],
                                          minlength=n)
                if lam > 0.0 and plan.any_decayable:
                    inflow[plan.root_index] += lam * float(
                        best[plan.decay_mask].sum())
                best = np.minimum(best, lvl + inflow * span)
            if np.any(best[cap_idx] > plan.capacity[cap_idx] - 1e-12):
                return None
        if not self._clamp_bound_ok(lvl, span, f, linear):
            return None

        system = self._coupled.get(lam)
        if system is None:
            system = CoupledSystem(self, lam)
            if len(self._coupled) > 4:  # decay toggles are rare
                self._coupled.clear()
            self._coupled[lam] = system
        integ = np.maximum(system.propagate(lvl, span)[1], 0.0)

        moved = np.zeros(len(plan.taps))
        if plan.const_taps.size:
            moved[plan.const_taps] = plan.rate[plan.const_taps] * span
        if plan.prop_taps.size:
            psrc = plan.src[plan.prop_taps]
            moved[plan.prop_taps] = plan.rate[plan.prop_taps] * integ[psrc]
        lost = np.zeros(n)
        reclaimed = 0.0
        if lam > 0.0 and plan.any_decayable:
            lost = np.where(plan.decay_mask, lam * integ, 0.0)
            reclaimed = float(lost.sum())
        # Commit levels by mass balance from the integrated flows, not
        # the ODE output: conservation is then exact by construction
        # (the two agree analytically; float-wise they differ in the
        # last ulps, and mass balance is the one the audits check).
        end = (lvl
               + np.bincount(plan.snk, weights=moved, minlength=n)
               - np.bincount(plan.src, weights=moved, minlength=n)
               - lost)
        end[plan.root_index] += reclaimed
        neg = np.minimum(end, 0.0)
        if float(neg.sum()) < -NEGATIVE_LEVEL_SLACK:
            return None  # bounds should preclude this; never guess
        if neg.any():
            # Float dust on near-empty reserves: clamp to zero and let
            # the root absorb the difference so the books still balance.
            end -= neg
            end[plan.root_index] += float(neg.sum())
        self.coupled_solves += 1
        return self._commit(end, moved, lost, reclaimed)

    # -- batched entry points (cohort fleets) -----------------------------------------

    def batch_clamp_ok(self, lvl: np.ndarray, span: float,
                       f: np.ndarray, linear: np.ndarray) -> np.ndarray:
        """Per-row :meth:`_clamp_safe_rows` over stacked levels."""
        return self._clamp_safe_rows(lvl, span, f, linear)

    # -- shared commit ---------------------------------------------------------------

    def _commit(self, end: np.ndarray, moved: np.ndarray,
                lost: np.ndarray, reclaimed: float) -> float:
        plan = self.plan
        n = len(plan.reserves)
        in_sum = np.bincount(plan.snk, weights=moved, minlength=n)
        out_sum = np.bincount(plan.src, weights=moved, minlength=n)
        for reserve, lv, o, i_, ls in zip(plan.reserves, end.tolist(),
                                          out_sum.tolist(), in_sum.tolist(),
                                          lost.tolist()):
            reserve._level = lv
            if o:
                reserve.total_transferred_out += o
            if i_:
                reserve.total_transferred_in += i_
            if ls:
                reserve.total_decayed += ls
        if reclaimed:
            plan.graph.root.total_deposited += reclaimed
            plan.graph.decay_policy.total_reclaimed += reclaimed
        if plan.owns_slots:
            plan._tap_flow_acc += moved
        else:
            # Span-cache plans never own the taps' accumulator slots
            # (the tick plan does); fold flows straight into the taps.
            for j in np.flatnonzero(moved):
                tap = plan.taps[j]
                tap.total_flowed = tap.total_flowed + moved[j]
        return float(moved.sum())


# ---------------------------------------------------------------------------
# cohort-batched span execution (fleets of structurally identical graphs)
# ---------------------------------------------------------------------------


def _flat_indices(plan: "FlowPlan", d: int
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(flat_src, flat_snk, row_base)`` for a ``d``-device stack.

    Cached on the lead plan (plans die with their topology epoch, so
    the cache cannot go stale); rebuilding these index arrays per
    span was a measurable share of small-cohort call overhead.
    """
    cache = getattr(plan, "_span_flat", None)
    if cache is not None and cache[0] == d:
        return cache[1], cache[2], cache[3]
    n = len(plan.reserves)
    row_base = (np.arange(d) * n)[:, None]
    flat_src = (row_base + plan.src).ravel()
    flat_snk = (row_base + plan.snk).ravel()
    plan._span_flat = (d, flat_src, flat_snk, row_base)
    return flat_src, flat_snk, row_base


def _commit_rows(tiers: List[SpanTier], ok: np.ndarray, end: np.ndarray,
                 moved: np.ndarray, lost: np.ndarray,
                 reclaimed: np.ndarray, in_sum: np.ndarray,
                 out_sum: np.ndarray,
                 results: List[Optional[float]]) -> None:
    """Commit a stacked solve device by device (bulk conversions).

    The bookkeeping is exactly :meth:`SpanTier._commit` per row; the
    whole-stack ``tolist`` conversions replace thousands of per-device
    numpy round-trips — at fleet scale the conversion overhead was a
    visible fraction of the solve.
    """
    end_l = end.tolist()
    in_l = in_sum.tolist()
    out_l = out_sum.tolist()
    lost_l = lost.tolist()
    moved_totals = moved.sum(axis=1).tolist()
    for i, tier in enumerate(tiers):
        if not ok[i]:
            continue
        plan = tier.plan
        for reserve, lv, o, i_, ls in zip(plan.reserves, end_l[i],
                                          out_l[i], in_l[i], lost_l[i]):
            reserve._level = lv
            if o:
                reserve.total_transferred_out += o
            if i_:
                reserve.total_transferred_in += i_
            if ls:
                reserve.total_decayed += ls
        rec = float(reclaimed[i])
        if rec:
            plan.graph.root.total_deposited += rec
            plan.graph.decay_policy.total_reclaimed += rec
        row = moved[i]
        if plan.owns_slots:
            plan._tap_flow_acc += row
        else:
            # Span-cache plans never own the taps' accumulator slots
            # (the tick plan does); fold flows straight into the taps.
            for j in np.flatnonzero(row):
                tap = plan.taps[j]
                tap.total_flowed = tap.total_flowed + row[j]
        results[i] = moved_totals[i]


def execute_span_batch(tiers: List[SpanTier],
                       span: float) -> List[Optional[float]]:
    """Solve one event-free span for a whole cohort in one stacked call.

    ``tiers`` belong to plans that share a
    :attr:`~repro.core.flowplan.FlowPlan.signature` and whose graphs
    run the same decay constant (the fleet batcher groups by both), so
    the continuous dynamics ``L' = A·L + b`` are literally the same
    system over different initial conditions.  Levels stack into one
    ``(n_devices, n_reserves)`` array:

    * the **diagonal** tier runs PR 1's scalar closed form elementwise
      across the stack — bit-identical per device to the per-device
      solve, since every operation is elementwise or a per-row
      bincount in the same order;
    * the **coupled** tier reuses a *single* eigendecomposition (or
      Padé propagator) from the lead tier's cached
      :class:`CoupledSystem` across the cohort's stacked ``L0`` — one
      factorization and a couple of matrix-matrix products instead of
      ``n_devices`` separate solves.  Levels commit by per-device mass
      balance, so conservation stays exact regardless of how the
      stacked linear algebra rounded.

    Refusal bounds (mid-span clamp, capacity pressure, debt, negative
    span-end dust) are evaluated **per device**: a refusing device is
    reported as ``None`` — nothing of it mutated — and the caller
    ticks it through the span instead, exactly like the scalar path.
    """
    lead = tiers[0]
    plan = lead.plan
    d = len(tiers)
    n = len(plan.reserves)
    policy = plan.graph.decay_policy
    lam = policy.lam if policy.enabled else 0.0
    lvl = np.empty((d, n))
    for i, tier in enumerate(tiers):
        lvl[i] = tier.plan._gather_levels()
    results: List[Optional[float]] = [None] * d
    ok = ~np.any(lvl < 0.0, axis=1)  # debt repayment is tick-granular
    if not ok.any():
        return results
    f = lead.prop_out + (lam if lam > 0.0 else 0.0) * plan.decay_mask
    linear = f > 0.0
    varying_in = lead.prop_sink_mask.copy()
    if lam > 0.0 and plan.any_decayable:
        varying_in[plan.root_index] = True
    coupled = bool(np.any(linear & varying_in))
    if not coupled:
        # Capacity clamping has no closed form; this is a topology
        # property, so the whole cohort passes or refuses together.
        if plan.finite_cap.size:
            cap_idx = plan.finite_cap
            gets_inflow = (lead.const_in[cap_idx] > 0.0) | varying_in[cap_idx]
            if np.any(gets_inflow):
                return results
        ok &= lead.batch_clamp_ok(lvl, span, f, linear)
        if not ok.any():
            return results
        _batch_diagonal(tiers, span, lam, lvl, f, linear, ok, results)
        return results

    # -- coupled cohort --------------------------------------------------------
    if plan.finite_cap.size:
        cap_idx = plan.finite_cap
        mass = lvl.sum(axis=1)  # all levels >= 0 on ok rows
        psrc = plan.src[plan.prop_taps]
        psnk = plan.snk[plan.prop_taps]
        prate = plan.rate[plan.prop_taps]
        best = np.repeat(mass[:, None], n, axis=1)
        row_base = _flat_indices(plan, d)[2]
        for _ in range(6):
            inflow = np.broadcast_to(lead.const_in, (d, n)).copy()
            if prate.size:
                flat = (row_base + psnk).ravel()
                inflow += np.bincount(
                    flat, weights=(prate * best[:, psrc]).ravel(),
                    minlength=d * n).reshape(d, n)
            if lam > 0.0 and plan.any_decayable:
                inflow[:, plan.root_index] += lam * best[
                    :, plan.decay_mask].sum(axis=1)
            best = np.minimum(best, lvl + inflow * span)
        ok &= ~np.any(best[:, cap_idx] > plan.capacity[cap_idx] - 1e-12,
                      axis=1)
    ok &= lead.batch_clamp_ok(lvl, span, f, linear)
    if not ok.any():
        return results

    system = lead._coupled.get(lam)
    if system is None:
        system = CoupledSystem(lead, lam)
        if len(lead._coupled) > 4:  # decay toggles are rare
            lead._coupled.clear()
        lead._coupled[lam] = system
    if system.eig is not None:
        w, v, vinv = system.eig
        c0 = lvl @ vinv.T            # (d, n) in the eigenbasis
        cb = vinv @ system.b
        z = w * span
        p1 = _phi1(z)
        p2 = _phi2(z)
        integ = ((span * (p1 * c0)
                  + (span * span) * (p2 * cb)) @ v.T).real
    else:
        propagator = system._dense_cache.get(span)
        if propagator is None:
            m_aug = np.zeros((2 * n + 1, 2 * n + 1))
            m_aug[:n, :n] = system.a
            m_aug[:n, n] = system.b
            m_aug[n + 1:, :n] = np.eye(n)
            propagator = _expm(m_aug * span)
            if len(system._dense_cache) > 32:
                system._dense_cache.clear()
            system._dense_cache[span] = propagator
        state = np.concatenate(
            [lvl, np.ones((d, 1)), np.zeros((d, n))], axis=1)
        integ = (state @ propagator.T)[:, n + 1:]
    integ = np.maximum(integ, 0.0)

    m = len(plan.taps)
    moved = np.zeros((d, m))
    if plan.const_taps.size:
        moved[:, plan.const_taps] = plan.rate[plan.const_taps] * span
    if plan.prop_taps.size:
        psrc = plan.src[plan.prop_taps]
        moved[:, plan.prop_taps] = plan.rate[plan.prop_taps] * integ[:, psrc]
    lost = np.zeros((d, n))
    reclaimed = np.zeros(d)
    if lam > 0.0 and plan.any_decayable:
        lost = np.where(plan.decay_mask, lam * integ, 0.0)
        reclaimed = lost.sum(axis=1)
    flat_src, flat_snk, _ = _flat_indices(plan, d)
    in_sum = np.bincount(flat_snk, weights=moved.ravel(),
                         minlength=d * n).reshape(d, n)
    out_sum = np.bincount(flat_src, weights=moved.ravel(),
                          minlength=d * n).reshape(d, n)
    end = lvl + in_sum - out_sum - lost
    end[:, plan.root_index] += reclaimed
    neg = np.minimum(end, 0.0)
    neg_rows = neg.sum(axis=1)
    ok &= ~(neg_rows < -NEGATIVE_LEVEL_SLACK)
    dusty = neg.any(axis=1) & ok
    if dusty.any():
        # Float dust on near-empty reserves: clamp to zero and let the
        # root absorb the difference so the books still balance.
        end[dusty] -= neg[dusty]
        end[dusty, plan.root_index] += neg_rows[dusty]
    for i, tier in enumerate(tiers):
        if ok[i]:
            tier.coupled_solves += 1
    _commit_rows(tiers, ok, end, moved, lost, reclaimed, in_sum, out_sum,
                 results)
    return results


def _batch_diagonal(tiers: List[SpanTier], span: float, lam: float,
                    lvl: np.ndarray, f: np.ndarray, linear: np.ndarray,
                    ok: np.ndarray, results: List[Optional[float]]) -> None:
    """The diagonal fast tier across stacked levels (elementwise)."""
    lead = tiers[0]
    plan = lead.plan
    d, n = lvl.shape
    decay_f = np.exp(-f * span)  # == 1 exactly where F == 0
    net_const = lead.const_in - lead.const_out
    steady = np.divide(net_const, f, out=np.zeros(n), where=linear)
    end = np.where(linear, steady + (lvl - steady) * decay_f,
                   lvl + net_const * span)
    drain = np.where(linear, lvl - end + net_const * span, 0.0)
    drain = np.maximum(drain, 0.0)

    m = len(plan.taps)
    moved = np.zeros((d, m))
    if plan.const_taps.size:
        moved[:, plan.const_taps] = plan.rate[plan.const_taps] * span
    if plan.prop_taps.size:
        psrc = plan.src[plan.prop_taps]
        share = np.divide(plan.rate[plan.prop_taps], f[psrc],
                          out=np.zeros(plan.prop_taps.size),
                          where=f[psrc] > 0)
        moved[:, plan.prop_taps] = drain[:, psrc] * share
        flat = (_flat_indices(plan, d)[2]
                + plan.snk[plan.prop_taps]).ravel()
        end += np.bincount(flat, weights=moved[:, plan.prop_taps].ravel(),
                           minlength=d * n).reshape(d, n)
    lost = np.zeros((d, n))
    reclaimed = np.zeros(d)
    if lam > 0.0 and plan.any_decayable:
        lost = np.where(linear & plan.decay_mask,
                        drain * np.divide(lam, f, out=np.zeros(n),
                                          where=linear), 0.0)
        reclaimed = lost.sum(axis=1)
        end[:, plan.root_index] += reclaimed
    flat_src, flat_snk, _ = _flat_indices(plan, d)
    in_sum = np.bincount(flat_snk, weights=moved.ravel(),
                         minlength=d * n).reshape(d, n)
    out_sum = np.bincount(flat_src, weights=moved.ravel(),
                          minlength=d * n).reshape(d, n)
    for i, tier in enumerate(tiers):
        if ok[i]:
            tier.diagonal_solves += 1
    _commit_rows(tiers, ok, end, moved, lost, reclaimed, in_sum, out_sum,
                 results)
