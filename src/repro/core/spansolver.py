"""The span tier: closed-form integration of event-free spans.

:class:`~repro.core.flowplan.FlowPlan` owns the *tick kernel* — one
vectorized batch round, exactly equivalent to sequential per-object
firing.  This module owns the other execution mode: integrating the
continuous dynamics of a whole event-free span in one shot (the
engine's idle fast-forward).  The two tiers share the compiled
topology snapshot but solve different problems, so they live in
different files.

Per reserve the continuous dynamics are linear::

    L' = A @ L + b

where ``b`` collects the constant taps (``const_in - const_out``) and
``A`` collects everything proportional: each proportional tap of rate
``f`` from reserve ``s`` to ``k`` contributes ``-f`` to ``A[s, s]``
and ``+f`` to ``A[k, s]``, and the global decay contributes ``-lam``
to every non-exempt diagonal with ``+lam`` routed to the root's row.

Two solvers, picked per call:

* **diagonal** — when no proportional tap feeds a reserve that itself
  drains proportionally (``A`` is effectively diagonal after dropping
  rows that only *receive*), each reserve solves independently:
  ``L(t) = steady + (L0 - steady) * exp(-F t)``.  This is the scalar
  closed form from PR 1, kept verbatim as the fast tier — it is a few
  numpy vector ops with no linear algebra.
* **coupled** — chained topologies (the paper's subdivision trees,
  ``clone_reserve`` backpressure, netd/GPS reserve trees) make ``A``
  genuinely triangular-or-worse.  The system is integrated with a
  matrix exponential: an eigendecomposition of ``A`` when it is
  well-conditioned (one factorization per topology epoch, then each
  span is a couple of matrix-vector products), falling back to
  scaling-and-squaring Padé on the augmented matrix when ``A`` is
  defective (equal-rate chains produce Jordan blocks) or its
  eigenbasis is ill-conditioned.  Per-reserve *time integrals*
  ``J = ∫ L dt`` come out of the same solve (phi-functions on the
  eigenvalue path, state augmentation on the Padé path) and give every
  proportional tap's exact integrated flow ``rate * J[src]`` — levels
  are then committed by **mass balance** from those flows, so
  conservation is exact by construction no matter what the linear
  algebra rounded.

The dynamics are only *piecewise* linear in time: a constant drain
clamping on an empty reserve, a finite capacity binding, and a debt
level crossing zero (the ``max(L, 0)`` nonlinearity) each switch the
system to a different linear regime at one discrete instant.  Those
used to be refusals — the whole span fell back to tick-by-tick.  The
**segmented engine** now handles them: when the single-regime bounds
fail, the solver locates the earliest switching instant inside the
span (sampling the closed-form trajectory, then bisecting on the
propagator — the eigendecomposition when the regime's ``A`` is
healthy, the Padé exponential when it is defective), integrates
exactly to it, rewrites the regime — pin an emptied reserve at zero
and pass its constant inflow through to its drains in creation order,
freeze a capped reserve and reject its inflow, flip a debt row to
inflow-only repayment — and continues segment by segment until the
span is consumed.  Per-segment flows are staged and the whole chain
commits by mass balance in one shot (or nothing commits at all), so
conservation stays exact and a refusal still mutates nothing.

Residual refusals are the regimes with no supported rewrite: an
empty-draining reserve fed by a live proportional tap (its
pass-through would be time-varying), a capacity binding on a reserve
that also drains or decays (its level would hover, not freeze), a
non-normal root, unlocatable or sub-resolution switch instants, and
chains longer than :data:`MAX_SEGMENTS`.  Tick-by-tick is always
correct, so the segmented engine never guesses.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .flowplan import FlowPlan

#: Test hook: force the scaling-and-squaring path even when the
#: eigendecomposition is healthy, so both expm code paths stay covered.
FORCE_DENSE_EXPM = False

#: Eigenbasis condition number above which eigendecomposition results
#: are not trusted (defective or nearly-defective ``A``).
EIG_COND_LIMIT = 1e8

#: Span-end negativity beyond float noise aborts the solve (the sound
#: bounds should make this unreachable; refuse rather than guess).
NEGATIVE_LEVEL_SLACK = 1e-6

#: Hard ceiling on regime switches inside one span; a span that keeps
#: switching beyond this is refused (tick-by-tick is always correct).
MAX_SEGMENTS = 64

#: Trajectory samples per segment when scanning for the earliest
#: switching instant (crossings between samples are then bisected).
EVENT_SAMPLES = 96

# per-reserve regime modes inside one segment
_NORMAL, _DEBT, _EMPTY, _FULL = 0, 1, 2, 3


def _expm(a: np.ndarray) -> np.ndarray:
    """Matrix exponential: scaling-and-squaring with a [13/13] Padé.

    The classic Higham recipe, simplified to the highest-order
    approximant only (these matrices are small — a reserve graph's
    live topology — so the sub-order early exits are not worth their
    bookkeeping).  numpy-only by construction: scipy is not a
    dependency of this package.
    """
    n = a.shape[0]
    norm = np.linalg.norm(a, 1)
    theta13 = 5.371920351148152
    squarings = 0
    if norm > theta13:
        squarings = int(math.ceil(math.log2(norm / theta13)))
        a = a / (2.0 ** squarings)
    b = (64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
         1187353796428800.0, 129060195264000.0, 10559470521600.0,
         670442572800.0, 33522128640.0, 1323241920.0, 40840800.0,
         960960.0, 16380.0, 182.0, 1.0)
    ident = np.eye(n)
    a2 = a @ a
    a4 = a2 @ a2
    a6 = a2 @ a4
    u = a @ (a6 @ (b[13] * a6 + b[11] * a4 + b[9] * a2)
             + b[7] * a6 + b[5] * a4 + b[3] * a2 + b[1] * ident)
    v = (a6 @ (b[12] * a6 + b[10] * a4 + b[8] * a2)
         + b[6] * a6 + b[4] * a4 + b[2] * a2 + b[0] * ident)
    r = np.linalg.solve(v - u, v + u)
    for _ in range(squarings):
        r = r @ r
    return r


def _phi1(z: np.ndarray) -> np.ndarray:
    """``(e^z - 1) / z`` with the removable singularity handled."""
    out = np.ones_like(z)
    small = np.abs(z) < 1e-3
    zl = z[~small]
    out[~small] = (np.exp(zl) - 1.0) / zl
    zs = z[small]
    out[small] = 1.0 + zs / 2.0 + zs * zs / 6.0 + zs ** 3 / 24.0
    return out


def _phi2(z: np.ndarray) -> np.ndarray:
    """``(e^z - 1 - z) / z^2`` with the removable singularity handled."""
    out = np.full_like(z, 0.5)
    small = np.abs(z) < 1e-3
    zl = z[~small]
    out[~small] = (np.exp(zl) - 1.0 - zl) / (zl * zl)
    zs = z[small]
    out[small] = 0.5 + zs / 6.0 + zs * zs / 24.0 + zs ** 3 / 120.0
    return out


def _augmented(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The ``(2n+1)``-square block matrix ``[[A, b, 0], [0], [I, 0]]``.

    One exponential of it yields both the state and its time integral:
    rows ``:n`` carry ``L' = A L + b`` (with the constant ``1`` state
    at index ``n`` driving ``b``), rows ``n+1:`` carry ``J' = L``.
    Shared by every dense (Padé) path — the scalar coupled solver, the
    batched cohort solver, and the segment propagator.
    """
    n = a.shape[0]
    m = np.zeros((2 * n + 1, 2 * n + 1))
    m[:n, :n] = a
    m[:n, n] = b
    m[n + 1:, :n] = np.eye(n)
    return m


def _eig_state_integral(eig: Tuple[np.ndarray, np.ndarray, np.ndarray],
                        b: np.ndarray, lvl: np.ndarray,
                        t: float) -> Tuple[np.ndarray, np.ndarray]:
    """``(L(t), J(t))`` on the eigenvalue path of ``L' = A L + b``.

    The one place the phi-function propagation formula lives: both the
    per-epoch :class:`CoupledSystem` and the per-regime
    :class:`_SegmentPropagator` delegate here, so the single-regime
    and segmented tiers cannot drift apart.
    """
    w, v, vinv = eig
    c0 = vinv @ lvl
    cb = vinv @ b
    z = w * t
    ez = np.exp(z)
    p1 = _phi1(z)
    p2 = _phi2(z)
    end = (v @ (ez * c0 + t * (p1 * cb))).real
    integ = (v @ (t * (p1 * c0) + (t * t) * (p2 * cb))).real
    return end, integ


def _trusted_eig(a: np.ndarray
                 ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """``(w, V, V^-1)`` when the eigenbasis of ``a`` is trustworthy.

    Returns None for defective or nearly-defective matrices (equal-rate
    chains produce Jordan blocks): the basis must be well-conditioned
    *and* actually reconstruct ``a`` — a nearly defective matrix can
    pass the condition gate yet round badly.
    """
    try:
        w, v = np.linalg.eig(a)
        cond = np.linalg.cond(v)
        if not np.isfinite(cond) or cond > EIG_COND_LIMIT:
            return None
        vinv = np.linalg.inv(v)
    except np.linalg.LinAlgError:  # pragma: no cover - numpy internal
        return None
    scale = max(1.0, float(np.abs(a).max()))
    recon = (v * w) @ vinv
    if float(np.abs(recon - a).max()) > 1e-9 * scale:
        return None
    return w, v, vinv


class CoupledSystem:
    """``L' = A L + b`` for one topology epoch at one decay constant.

    Built once per (plan, lam) and cached on the :class:`SpanTier`:
    the expensive part — the eigendecomposition, or per-span Padé
    exponentials of the augmented matrix — amortizes across every span
    the epoch serves.
    """

    def __init__(self, tier: "SpanTier", lam: float) -> None:
        plan = tier.plan
        n = len(plan.reserves)
        a = np.zeros((n, n))
        for j in plan.prop_taps:
            s, k, f = int(plan.src[j]), int(plan.snk[j]), plan.rate[j]
            a[s, s] -= f
            a[k, s] += f
        if lam > 0.0 and plan.any_decayable:
            decayable = np.flatnonzero(plan.decay_mask)
            a[decayable, decayable] -= lam
            a[plan.root_index, decayable] += lam
        self.a = a
        self.b = tier.const_in - tier.const_out
        self.n = n
        #: (eigenvalues, V, V^-1) when the eigenbasis is trusted.
        self.eig: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        #: span -> expm of the augmented matrix (Padé fallback path).
        self._dense_cache: Dict[float, np.ndarray] = {}
        #: Telemetry/testing: which solve path this system uses.
        self.mode = "dense"
        if not FORCE_DENSE_EXPM:
            self.eig = _trusted_eig(self.a)
            if self.eig is not None:
                self.mode = "eig"

    def propagate(self, lvl: np.ndarray,
                  span: float) -> Tuple[np.ndarray, np.ndarray]:
        """``(L(span), J(span))`` where ``J = ∫_0^span L dt``."""
        if self.eig is not None:
            return _eig_state_integral(self.eig, self.b, lvl, span)
        propagator = self._dense_cache.get(span)
        if propagator is None:
            propagator = _expm(_augmented(self.a, self.b) * span)
            if len(self._dense_cache) > 32:  # unbounded-span safety valve
                self._dense_cache.clear()
            self._dense_cache[span] = propagator
        n = self.n
        state = np.concatenate([lvl, [1.0], np.zeros(n)])
        result = propagator @ state
        return result[:n], result[n + 1:]


class _SegmentPropagator:
    """Closed-form evaluator for one regime's ``L' = A L + b``.

    Unlike :class:`CoupledSystem` (one system per topology epoch) a
    propagator describes one *regime* — the linear system left after a
    segment's pins and drops — and must answer trajectory queries at
    arbitrary instants for event location.  The eigenvalue path makes
    those queries a couple of matrix-vector products; the Padé path
    pays one augmented-matrix exponential per query (regimes are
    small, and event location runs only when a switch is near).
    """

    def __init__(self, a: np.ndarray, b: np.ndarray) -> None:
        self.a = a
        self.b = b
        self.n = a.shape[0]
        self.eig = None if FORCE_DENSE_EXPM else _trusted_eig(a)

    def states(self, lvl: np.ndarray, ts: np.ndarray) -> np.ndarray:
        """``L(t)`` stacked over a *uniform* ascending grid ``ts``.

        The grid must start at its own spacing (``ts[k] = (k+1) * dt``)
        — exactly the event scan's ``linspace`` — so the dense path can
        propagate one per-step exponential instead of one per sample.
        """
        if self.eig is not None:
            w, v, vinv = self.eig
            c0 = vinv @ lvl
            cb = vinv @ self.b
            z = np.multiply.outer(ts, w)
            out = (np.exp(z) * c0 + ts[:, None] * (_phi1(z) * cb)) @ v.T
            return out.real
        n = self.n
        dt = ts[0] if len(ts) == 1 else ts[1] - ts[0]
        step = _expm(_augmented(self.a, self.b) * dt)
        state = np.concatenate([lvl, [1.0], np.zeros(n)])
        out = np.empty((len(ts), n))
        for k in range(len(ts)):
            state = step @ state
            out[k] = state[:n]
        return out

    def state_at(self, lvl: np.ndarray, t: float) -> np.ndarray:
        """``L(t)`` at one arbitrary instant (bisection queries)."""
        if self.eig is not None:
            w, v, vinv = self.eig
            z = w * t
            return (v @ (np.exp(z) * (vinv @ lvl)
                         + t * (_phi1(z) * (vinv @ self.b)))).real
        state = np.concatenate([lvl, [1.0], np.zeros(self.n)])
        return (_expm(_augmented(self.a, self.b) * t) @ state)[:self.n]

    def propagate(self, lvl: np.ndarray,
                  t: float) -> Tuple[np.ndarray, np.ndarray]:
        """``(L(t), J(t))`` where ``J = ∫_0^t L dt``."""
        if self.eig is not None:
            return _eig_state_integral(self.eig, self.b, lvl, t)
        state = np.concatenate([lvl, [1.0], np.zeros(self.n)])
        result = _expm(_augmented(self.a, self.b) * t) @ state
        return result[:self.n], result[self.n + 1:]


class _SegmentRegime:
    """One piecewise-linear regime: pins, effective rates, monitors.

    Everything here is a pure function of the per-reserve mode vector
    (and the decay constant), so regimes are cached on the tier keyed
    by ``(lam, mode bytes)`` — levels enter only as the propagator's
    initial condition.
    """

    __slots__ = ("mode", "eff", "const_idx", "prop_idx", "decay_rows",
                 "system", "clamp_rows", "cap_rows", "cap_limits",
                 "debt_rows", "lam", "root", "out_eff", "in_eff",
                 "f_row", "always_safe", "cin_snk", "cin_src", "cin_eff",
                 "psrc", "psnk", "prate")

    def __init__(self, mode, eff, const_idx, prop_idx, decay_rows,
                 system, clamp_rows, cap_rows, cap_limits,
                 debt_rows, lam, root, out_eff, in_eff, f_row,
                 always_safe, cin_snk, cin_src, cin_eff, psrc, psnk,
                 prate) -> None:
        self.mode = mode
        self.eff = eff
        self.const_idx = const_idx
        self.prop_idx = prop_idx
        self.decay_rows = decay_rows
        self.system = system
        self.clamp_rows = clamp_rows
        self.cap_rows = cap_rows
        self.cap_limits = cap_limits
        self.debt_rows = debt_rows
        self.lam = lam
        self.root = root
        self.out_eff = out_eff
        self.in_eff = in_eff
        self.f_row = f_row
        self.always_safe = always_safe
        self.cin_snk = cin_snk
        self.cin_src = cin_src
        self.cin_eff = cin_eff
        self.psrc = psrc
        self.psnk = psnk
        self.prate = prate

    def certify(self, lvl: np.ndarray, t: float, ltol: float,
                crossed: np.ndarray) -> bool:
        """Sound no-switch certificate for ``[0, t]`` (crossing rows
        excluded — their switch *is* the segment boundary).

        The sampled event scan can miss a boundary excursion narrower
        than its grid (a capped reserve spiking over the cap and back,
        a drained reserve dipping below zero and recovering), which
        would silently commit flows tick-by-tick execution clamps.  A
        segment therefore only commits when these closed-form bounds
        hold over its whole interval:

        * **clamp rows** — the inflow-free lower bound, iteratively
          refined by crediting constant inflow from provably safe
          sources (the root, pinned reserves, and rows the previous
          iterate certified — the continuous analogue of the tier's
          ``early_feeds`` refinement);
        * **cap rows** — the iterated inflow upper bound (inflow at
          the previous bound, outflow ignored), the same bound the
          coupled tier refuses on.

        Debt rows need no certificate: their trajectories are monotone
        non-decreasing (inflow only), so the sampler cannot miss a
        crossing.  A failed certificate refuses the span — ticking is
        always correct.
        """
        n = lvl.shape[0]
        normal = self.mode == _NORMAL
        clamp = self.clamp_rows[~crossed[self.clamp_rows]]
        if clamp.size:
            safe = self.always_safe.copy()
            f = self.f_row
            linear = f > 0.0
            decay_f = np.exp(-f * t)
            for _ in range(4):
                credit = np.zeros(n)
                if self.cin_snk.size:
                    np.add.at(credit, self.cin_snk,
                              self.cin_eff * safe[self.cin_src])
                deficit = np.maximum(self.out_eff - credit, 0.0)
                per_f = np.divide(deficit, f, out=np.zeros(n),
                                  where=linear)
                lower = np.where(linear,
                                 lvl * decay_f - per_f * (1.0 - decay_f),
                                 lvl - deficit * t)
                refined = self.always_safe | (normal
                                              & (lower >= -4.0 * ltol))
                if (refined == safe).all():
                    break
                safe = refined
            if not safe[clamp].all():
                return False
        if self.cap_rows.size:
            keep = ~crossed[self.cap_rows]
            caps = self.cap_rows[keep]
            limits = self.cap_limits[keep]
            if caps.size:
                mass = float(np.maximum(lvl, 0.0).sum())
                best = np.full(n, mass)
                for _ in range(6):
                    inflow = self.in_eff.copy()
                    if self.prate.size:
                        np.add.at(inflow, self.psnk,
                                  self.prate * best[self.psrc])
                    if self.lam > 0.0 and self.decay_rows.size:
                        inflow[self.root] += self.lam * float(
                            best[self.decay_rows].sum())
                    best = np.minimum(best, lvl + inflow * t)
                if (best[caps] > limits).any():
                    return False
        return True

    def _violated(self, states: np.ndarray, ltol: float) -> np.ndarray:
        """Per-sample ``True`` where any switch condition holds."""
        hit = np.zeros(states.shape[0], dtype=bool)
        if self.clamp_rows.size:
            hit |= (states[:, self.clamp_rows] < -ltol).any(axis=1)
        if self.cap_rows.size:
            hit |= (states[:, self.cap_rows] > self.cap_limits).any(axis=1)
        if self.debt_rows.size:
            hit |= (states[:, self.debt_rows] > -ltol).any(axis=1)
        return hit

    def first_switch(self, lvl: np.ndarray, span: float, ltol: float
                     ) -> Optional[Tuple[float, np.ndarray]]:
        """Earliest instant in ``(0, span]`` a switch condition fires.

        Samples the closed-form trajectory on a uniform grid, then
        bisects the first violating bracket down to the propagator's
        resolution.  Returns ``(instant, crossing-row mask)``: the
        instant is the last *clean* time — integrating to it lands
        exactly on the regime boundary — and the mask marks the rows
        violating just past it, which :meth:`certify` excludes from
        the segment's no-switch certificate (their switch *is* the
        boundary).  None means no sampled condition fires; the caller
        still certifies the whole interval before committing.
        """
        if not (self.clamp_rows.size or self.cap_rows.size
                or self.debt_rows.size):
            return None
        ts = np.linspace(span / EVENT_SAMPLES, span, EVENT_SAMPLES)
        hit = self._violated(self.system.states(lvl, ts), ltol)
        where = np.flatnonzero(hit)
        if where.size == 0:
            return None
        first = int(where[0])
        lo = 0.0 if first == 0 else float(ts[first - 1])
        hi = float(ts[first])
        floor = max(1e-12 * span, 1e-15)
        for _ in range(64):
            if hi - lo <= floor:
                break
            mid = 0.5 * (lo + hi)
            state = self.system.state_at(lvl, mid)
            if self._violated(state[None, :], ltol)[0]:
                hi = mid
            else:
                lo = mid
        state_hi = self.system.state_at(lvl, hi)
        crossed = np.zeros(lvl.shape[0], dtype=bool)
        if self.clamp_rows.size:
            rows = self.clamp_rows
            crossed[rows[state_hi[rows] < -ltol]] = True
        if self.cap_rows.size:
            rows = self.cap_rows
            crossed[rows[state_hi[rows] > self.cap_limits]] = True
        if self.debt_rows.size:
            rows = self.debt_rows
            crossed[rows[state_hi[rows] > -ltol]] = True
        return lo, crossed


class SpanTier:
    """Closed-form span execution over one compiled plan's topology."""

    def __init__(self, plan: "FlowPlan") -> None:
        self.plan = plan
        n = len(plan.reserves)
        self.const_in = np.zeros(n)
        self.const_out = np.zeros(n)
        self.prop_out = np.zeros(n)
        self.prop_sink_mask = np.zeros(n, dtype=bool)
        first_drain: Dict[int, int] = {}
        for j in range(len(plan.taps)):
            s, k, r = int(plan.src[j]), int(plan.snk[j]), plan.rate[j]
            if plan.const_mask[j]:
                self.const_out[s] += r
                self.const_in[k] += r
                first_drain.setdefault(s, j)
            else:
                self.prop_out[s] += r
                self.prop_sink_mask[k] = True
        #: Constant feeds that land *before* their sink's first
        #: constant drain in creation order: ``(sink, source, rate)``.
        #: Within every tick these deposit ahead of the drain, so —
        #: provided the feed's own source cannot clamp — they are
        #: guaranteed income the clamp bound may credit (the
        #: pass-through shapes: task-manager pools, relay junctions).
        self.early_feeds = [
            (int(plan.snk[j]), int(plan.src[j]), plan.rate[j])
            for j in range(len(plan.taps))
            if plan.const_mask[j]
            and j < first_drain.get(int(plan.snk[j]), len(plan.taps))]
        #: Per-reserve tap adjacency (index lists into the plan's tap
        #: arrays), precomputed once per tier: the segmented engine's
        #: regime derivation walks these per segment, and plans are
        #: immutable for the tier's lifetime.
        self.const_into: Dict[int, List[int]] = {}
        self.const_from: Dict[int, List[int]] = {}
        self.prop_into: Dict[int, List[int]] = {}
        self.prop_from: Dict[int, List[int]] = {}
        for j in range(len(plan.taps)):
            s, k = int(plan.src[j]), int(plan.snk[j])
            if plan.const_mask[j]:
                self.const_into.setdefault(k, []).append(j)
                self.const_from.setdefault(s, []).append(j)
            else:
                self.prop_into.setdefault(k, []).append(j)
                self.prop_from.setdefault(s, []).append(j)
        #: lam -> the coupled linear system at that decay constant.
        self._coupled: Dict[float, CoupledSystem] = {}
        #: (lam, mode bytes) -> cached :class:`_SegmentRegime` (the
        #: eigendecomposition amortizes across every segment that
        #: re-enters the same regime; persistent clamped regimes
        #: re-enter one per macro-step).
        self._regimes: Dict[Tuple[float, bytes], _SegmentRegime] = {}
        #: Telemetry: spans solved by each tier (diagnostics/tests).
        self.diagonal_solves = 0
        self.coupled_solves = 0
        self.segmented_solves = 0

    # -- shared refusal bounds ---------------------------------------------------

    def _clamp_safe_rows(self, lvl: np.ndarray, span: float,
                         f: np.ndarray, linear: np.ndarray
                         ) -> np.ndarray:
        """Per-row ``True`` iff no constant drain can clamp in the span.

        ``lvl`` is stacked ``(d, n)``.  First pass: ``L' >= -const_out
        - F*L`` (every inflow ignored) is monotone decreasing, so the
        span-end value of that lower-bound ODE bounds the whole
        trajectory.  Sound for coupled systems too: coupling only
        ever *adds* inflow.

        Reserves that fail the inflow-free bound get a refined pass:
        constant feeds that fire *before* the reserve's first drain
        within every tick (:attr:`early_feeds`), and whose own source
        is already proven clamp-free, are guaranteed income — the
        effective drain is only the deficit beyond them.  This is
        what admits pass-through shapes (a junction fed at 14 mW and
        drained at 14 mW sits at level ~0 forever, which the
        inflow-free bound can never clear) while staying exactly as
        sound: each iterate credits only feeds from reserves proven
        safe by the previous iterate, and tick execution delivers
        those deposits ahead of the drain by creation order.
        """
        d, n = lvl.shape
        const_out = self.const_out
        draining = const_out > 0.0
        if not draining.any():
            return np.ones(d, dtype=bool)
        per_f = np.divide(const_out, f, out=np.zeros(n), where=linear)
        decay_f = np.exp(-f * span)
        lower = np.where(linear,
                         lvl * decay_f - per_f * (1.0 - decay_f),
                         lvl - const_out * span)
        safe = (lower >= 0.0) | ~draining
        rows_ok = safe.all(axis=1)
        if rows_ok.all() or not self.early_feeds:
            return rows_ok
        for _ in range(3):
            guaranteed = np.zeros((d, n))
            for snk, src, rate in self.early_feeds:
                guaranteed[:, snk] += rate * safe[:, src]
            deficit = np.maximum(const_out - guaranteed, 0.0)
            per_f = np.divide(deficit, f, out=np.zeros((d, n)),
                              where=linear)
            lower = np.where(linear,
                             lvl * decay_f - per_f * (1.0 - decay_f),
                             lvl - deficit * span)
            refined = (lower >= 0.0) | ~draining
            if (refined == safe).all():
                break
            safe = refined  # monotone: deficit only shrinks
        return safe.all(axis=1)

    def _clamp_bound_ok(self, lvl: np.ndarray, span: float,
                        f: np.ndarray, linear: np.ndarray) -> bool:
        """Scalar entry point over :meth:`_clamp_safe_rows`."""
        return bool(self._clamp_safe_rows(lvl[None, :], span, f,
                                          linear)[0])

    # -- entry point ---------------------------------------------------------------

    def execute(self, span: float) -> Optional[float]:
        """Integrate flows and decay over ``span`` seconds in one shot.

        Returns total tap flow, or None when no closed form applies
        (caller must tick instead); a None return mutates nothing.

        The single-regime tiers run first, verbatim (their arithmetic
        carries bit-identical contracts); whenever they would have
        refused — debt entry, a possible mid-span clamp, capacity
        pressure — the span falls through to the segmented engine,
        which integrates regime to regime across the switch instants
        and only refuses the residual shapes it cannot rewrite.
        """
        plan = self.plan
        n = len(plan.reserves)
        policy = plan.graph.decay_policy
        lam = policy.lam if policy.enabled else 0.0
        lvl = plan._gather_levels()
        if np.any(lvl < 0.0):
            # Debt entry: the max(L, 0) nonlinearity is itself a
            # regime — repayment segments instead of refusing.
            return self._execute_segmented(span, lam, lvl)
        f = self.prop_out + (lam if lam > 0.0 else 0.0) * plan.decay_mask
        linear = f > 0.0
        # Reserves whose drains read their level need constant inflow
        # for the *diagonal* solver; anything else is a coupled system.
        varying_in = self.prop_sink_mask.copy()
        if lam > 0.0 and plan.any_decayable:
            varying_in[plan.root_index] = True
        result: Optional[float] = None
        if np.any(linear & varying_in):
            result = self._execute_coupled(span, lam, lvl, f, linear)
        elif plan.finite_cap.size and np.any(
                (self.const_in[plan.finite_cap] > 0.0)
                | varying_in[plan.finite_cap]):
            result = None  # a capacity could bind: locate the instant
        elif not self._clamp_bound_ok(lvl, span, f, linear):
            result = None  # a drain could clamp: locate the instant
        else:
            result = self._execute_diagonal(span, lam, lvl, f, linear)
        if result is None:
            result = self._execute_segmented(span, lam, lvl)
        return result

    # -- the diagonal fast tier (PR 1's scalar closed form, verbatim) --------------

    def _execute_diagonal(self, span: float, lam: float, lvl: np.ndarray,
                          f: np.ndarray, linear: np.ndarray
                          ) -> Optional[float]:
        plan = self.plan
        n = len(plan.reserves)
        decay_f = np.exp(-f * span)  # == 1 exactly where F == 0
        net_const = self.const_in - self.const_out
        steady = np.divide(net_const, f, out=np.zeros(n), where=linear)
        end = np.where(linear, steady + (lvl - steady) * decay_f,
                       lvl + net_const * span)
        # Mass balance: everything a linear reserve lost to its
        # proportional drains and decay over the span.
        drain = np.where(linear, lvl - end + net_const * span, 0.0)
        drain = np.maximum(drain, 0.0)

        moved = np.zeros(len(plan.taps))
        if plan.const_taps.size:
            moved[plan.const_taps] = plan.rate[plan.const_taps] * span
        if plan.prop_taps.size:
            psrc = plan.src[plan.prop_taps]
            share = np.divide(plan.rate[plan.prop_taps], f[psrc],
                              out=np.zeros(plan.prop_taps.size),
                              where=f[psrc] > 0)
            moved[plan.prop_taps] = drain[psrc] * share
            end += np.bincount(plan.snk[plan.prop_taps],
                               weights=moved[plan.prop_taps], minlength=n)
        lost = np.zeros(n)
        reclaimed = 0.0
        if lam > 0.0 and plan.any_decayable:
            lost = np.where(linear & plan.decay_mask,
                            drain * np.divide(lam, f, out=np.zeros(n),
                                              where=linear), 0.0)
            reclaimed = float(lost.sum())
            end[plan.root_index] += reclaimed
        self.diagonal_solves += 1
        return self._commit(end, moved, lost, reclaimed)

    # -- the coupled tier (matrix exponential) --------------------------------------

    def _execute_coupled(self, span: float, lam: float, lvl: np.ndarray,
                         f: np.ndarray, linear: np.ndarray
                         ) -> Optional[float]:
        plan = self.plan
        n = len(plan.reserves)
        # Capacity pressure: bound each trajectory's maximum.  Since
        # mass is conserved and levels stay non-negative, every level
        # is bounded by the total mass; refining through
        # ``U <- lvl + span * (const_in + P_prop @ U)`` keeps a sound
        # pointwise bound at each iterate (inflow integrated at the
        # previous bound, outflow ignored), and the elementwise best
        # over a few iterates is tight enough for realistic headroom.
        if plan.finite_cap.size:
            cap_idx = plan.finite_cap
            mass = float(lvl.sum())  # all levels >= 0 here
            psrc = plan.src[plan.prop_taps]
            psnk = plan.snk[plan.prop_taps]
            prate = plan.rate[plan.prop_taps]
            best = np.full(n, mass)
            for _ in range(6):
                inflow = self.const_in.copy()
                if prate.size:
                    inflow += np.bincount(psnk, weights=prate * best[psrc],
                                          minlength=n)
                if lam > 0.0 and plan.any_decayable:
                    inflow[plan.root_index] += lam * float(
                        best[plan.decay_mask].sum())
                best = np.minimum(best, lvl + inflow * span)
            if np.any(best[cap_idx] > plan.capacity[cap_idx] - 1e-12):
                return None
        if not self._clamp_bound_ok(lvl, span, f, linear):
            return None

        system = self._coupled.get(lam)
        if system is None:
            system = CoupledSystem(self, lam)
            if len(self._coupled) > 4:  # decay toggles are rare
                self._coupled.clear()
            self._coupled[lam] = system
        integ = np.maximum(system.propagate(lvl, span)[1], 0.0)

        moved = np.zeros(len(plan.taps))
        if plan.const_taps.size:
            moved[plan.const_taps] = plan.rate[plan.const_taps] * span
        if plan.prop_taps.size:
            psrc = plan.src[plan.prop_taps]
            moved[plan.prop_taps] = plan.rate[plan.prop_taps] * integ[psrc]
        lost = np.zeros(n)
        reclaimed = 0.0
        if lam > 0.0 and plan.any_decayable:
            lost = np.where(plan.decay_mask, lam * integ, 0.0)
            reclaimed = float(lost.sum())
        # Commit levels by mass balance from the integrated flows, not
        # the ODE output: conservation is then exact by construction
        # (the two agree analytically; float-wise they differ in the
        # last ulps, and mass balance is the one the audits check).
        end = (lvl
               + np.bincount(plan.snk, weights=moved, minlength=n)
               - np.bincount(plan.src, weights=moved, minlength=n)
               - lost)
        end[plan.root_index] += reclaimed
        neg = np.minimum(end, 0.0)
        if float(neg.sum()) < -NEGATIVE_LEVEL_SLACK:
            return None  # bounds should preclude this; never guess
        if neg.any():
            # Float dust on near-empty reserves: clamp to zero and let
            # the root absorb the difference so the books still balance.
            end -= neg
            end[plan.root_index] += float(neg.sum())
        self.coupled_solves += 1
        return self._commit(end, moved, lost, reclaimed)

    # -- the segmented engine (piecewise-linear regime switching) ------------------

    def _execute_segmented(self, span: float, lam: float,
                           lvl: np.ndarray) -> Optional[float]:
        """Integrate a span as a chain of linear-regime segments.

        Every regime change — a constant drain clamping on an emptied
        reserve, a finite capacity binding, a debt level crossing zero
        — happens at one locatable instant; between two instants the
        dynamics are plain ``L' = A L + b`` for the regime's reduced
        system.  The loop derives the regime from the working levels,
        locates the earliest switch, integrates exactly to it, and
        repeats on the rewritten system until the span is consumed.

        Everything is *staged*: per-segment flows, decay losses and the
        working levels accumulate on copies, and only a fully solved
        chain commits (by mass balance, so conservation stays exact no
        matter how many segments the span crossed).  A None return —
        an unsupported regime, an unlocatable or sub-resolution switch,
        or a chain past :data:`MAX_SEGMENTS` — mutates nothing and the
        caller ticks, which is always correct.
        """
        plan = self.plan
        n = len(plan.reserves)
        m = len(plan.taps)
        root = plan.root_index
        lvl = lvl.copy()  # staged: the caller's gather stays pristine
        scale = max(1.0, float(np.abs(lvl).max()))
        ltol = 1e-11 * scale
        def absorb_dust() -> None:
            # Float dust from a located crossing: clamp to zero and
            # let the root absorb the difference (same book-balancing
            # the coupled tier applies to span-end dust).
            dust = (lvl < 0.0) & (lvl >= -4.0 * ltol)
            if dust.any():
                lvl[root] += float(lvl[dust].sum())
                lvl[dust] = 0.0

        moved = np.zeros(m)
        lost = np.zeros(n)
        reclaimed = 0.0
        remaining = float(span)
        segments = 0
        min_seg = max(1e-12, 1e-10 * span)
        while remaining > 1e-9 * span:
            if segments >= MAX_SEGMENTS:
                return None
            absorb_dust()
            regime = self._regime_for(lvl, lam, ltol)
            if regime is None:
                return None
            switch = regime.first_switch(lvl, remaining, ltol)
            if switch is None:
                seg_span = remaining
                crossed = np.zeros(n, dtype=bool)
            else:
                seg_span, crossed = switch
            if seg_span < min_seg:
                return None  # coincident events: cannot make progress
            if not regime.certify(lvl, seg_span, ltol, crossed):
                return None  # a sub-sample excursion cannot be ruled out
            step = self._integrate_segment(regime, lvl, seg_span, lam)
            if step is None:
                return None
            lvl, seg_moved, seg_lost, seg_reclaimed = step
            moved += seg_moved
            lost += seg_lost
            reclaimed += seg_reclaimed
            segments += 1
            remaining = 0.0 if switch is None else remaining - seg_span
        if segments == 0:
            return 0.0
        absorb_dust()
        graph = plan.graph
        graph.span_segments += segments
        graph.span_switches += segments - 1
        self.segmented_solves += 1
        return self._commit(lvl, moved, lost, reclaimed)

    def _regime_for(self, lvl: np.ndarray, lam: float,
                    ltol: float) -> Optional[_SegmentRegime]:
        """The cached regime for the current levels (or None)."""
        derived = self._derive_modes(lvl, lam, ltol)
        if derived is None:
            return None
        mode, eff = derived
        key = (lam, mode.tobytes())
        regime = self._regimes.get(key)
        if regime is None:
            regime = self._build_regime(mode, eff, lam)
            if len(self._regimes) > 16:  # regime-churn safety valve
                self._regimes.clear()
            self._regimes[key] = regime
        return regime

    def _derive_modes(self, lvl: np.ndarray, lam: float, ltol: float
                      ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Classify every reserve into its regime mode, or None.

        Modes: NORMAL (full linear row), DEBT (level below zero —
        outflows and decay off, inflow repays), EMPTY (pinned at zero,
        constant inflow passed through to its constant drains in
        creation order), FULL (pinned at capacity, inflow rejected at
        the taps — the energy stays in the sources).  ``eff`` is the
        per-tap effective constant rate under those modes (the
        pass-through distribution).  None marks the residual shapes
        with no supported rewrite; the caller refuses the span.
        """
        plan = self.plan
        n = len(plan.reserves)
        m = len(plan.taps)
        src = plan.src
        snk = plan.snk
        rate = plan.rate
        const = plan.const_mask
        cap = plan.capacity
        root = plan.root_index
        boundary = 4.0 * ltol
        mode = np.full(n, _NORMAL, dtype=np.int8)
        mode[lvl < 0.0] = _DEBT  # dust was clamped by the caller

        const_into = self.const_into
        const_from = self.const_from
        prop_into = self.prop_into
        prop_from = self.prop_from

        # -- capacity pins: at the cap with live inflow -> freeze --
        for i in plan.finite_cap:
            i = int(i)
            if mode[i] != _NORMAL:
                continue
            band = max(1e-9, 1e-11 * cap[i])
            if lvl[i] < cap[i] - 2.0 * band:
                continue
            inflow = any(mode[int(src[j])] != _DEBT
                         for j in const_into.get(i, ()))
            inflow = inflow or any(mode[int(src[j])] != _DEBT
                                   for j in prop_into.get(i, ()))
            inflow = inflow or (i == root and lam > 0.0
                                and plan.any_decayable)
            if not inflow:
                continue  # nothing arrives: normal dynamics are exact
            if const_from.get(i) or prop_from.get(i):
                return None  # draining full reserve hovers, not freezes
            if lam > 0.0 and plan.decay_mask[i]:
                return None  # decay reopens headroom every tick
            mode[i] = _FULL

        # -- effective constant rates under the pins --
        eff = np.where(const, rate, 0.0)
        for j in range(m):
            if not const[j]:
                continue
            if mode[int(src[j])] == _DEBT or mode[int(snk[j])] == _FULL:
                eff[j] = 0.0

        # -- empty pins: fixpoint over the pass-through distribution --
        # A reserve at zero whose constant drains outrun its constant
        # inflow sits pinned: each tick deposits arrive first (creation
        # order) and the drains clamp to them.  Effective drain rates
        # only shrink as upstream reserves pin, so the EMPTY set grows
        # monotonically and the loop settles within n passes.
        candidates = [i for i in range(n)
                      if i != root and mode[i] == _NORMAL
                      and lvl[i] <= boundary and const_from.get(i)]
        for _ in range(n + 2):
            changed = False
            for i in candidates:
                if mode[i] == _FULL:
                    continue
                drains = [j for j in const_from.get(i, ())
                          if mode[int(snk[j])] != _FULL]
                out_rate = sum(rate[j] for j in drains)
                if out_rate <= 0.0:
                    continue
                c_in = sum(eff[j] for j in const_into.get(i, ()))
                live_prop = [j for j in prop_into.get(i, ())
                             if mode[int(src[j])] == _NORMAL]
                p_in = sum(rate[j] * max(0.0, lvl[int(src[j])])
                           for j in live_prop)
                if c_in + p_in >= out_rate - 1e-15:
                    if mode[i] == _EMPTY:
                        mode[i] = _NORMAL
                        changed = True
                    for j in drains:
                        if eff[j] != rate[j]:
                            eff[j] = rate[j]
                            changed = True
                    continue
                if live_prop:
                    # A time-varying pass-through has no constant
                    # rewrite; per-tick execution handles it.
                    return None
                if mode[i] != _EMPTY:
                    mode[i] = _EMPTY
                    changed = True
                remainder = c_in
                for j in drains:
                    e = min(remainder, rate[j])
                    if eff[j] != e:
                        eff[j] = e
                        changed = True
                    remainder -= e
            if not changed:
                break
        else:
            return None  # pass-through cycle did not settle
        if mode[root] != _NORMAL:
            return None  # a non-normal battery has no rewrite
        return mode, eff

    def _build_regime(self, mode: np.ndarray, eff: np.ndarray,
                      lam: float) -> _SegmentRegime:
        """Materialize the linear system and monitors for one regime."""
        plan = self.plan
        n = len(plan.reserves)
        m = len(plan.taps)
        src = plan.src
        snk = plan.snk
        rate = plan.rate
        const = plan.const_mask
        root = plan.root_index
        normal = mode == _NORMAL
        active_row = normal | (mode == _DEBT)

        prop_active = np.zeros(m, dtype=bool)
        for j in range(m):
            if const[j]:
                continue
            if (mode[int(src[j])] == _NORMAL
                    and mode[int(snk[j])] != _FULL):
                prop_active[j] = True

        a = np.zeros((n, n))
        for j in np.flatnonzero(prop_active):
            s, k, f = int(src[j]), int(snk[j]), rate[j]
            a[s, s] -= f
            a[k, s] += f
        decay_rows = np.array([], dtype=np.intp)
        if lam > 0.0 and plan.any_decayable:
            decay_rows = np.flatnonzero(normal & plan.decay_mask)
            if decay_rows.size:
                a[decay_rows, decay_rows] -= lam
                a[root, decay_rows] += lam
        b = np.zeros(n)
        in_eff = np.zeros(n)
        out_eff = np.zeros(n)
        for j in range(m):
            if not const[j] or eff[j] <= 0.0:
                continue
            s, k = int(src[j]), int(snk[j])
            out_eff[s] += eff[j]
            in_eff[k] += eff[j]
            if active_row[s]:
                b[s] -= eff[j]
            if active_row[k]:
                b[k] += eff[j]

        prop_in = np.zeros(n, dtype=bool)
        for j in np.flatnonzero(prop_active):
            prop_in[int(snk[j])] = True
        clamp_rows = np.flatnonzero(normal & (out_eff > 0.0))
        has_in = (in_eff > 0.0) | prop_in
        if decay_rows.size:
            has_in[root] = True  # decay reclaim deposits into the root
        cap_mask = np.zeros(n, dtype=bool)
        cap_mask[plan.finite_cap] = True
        cap_rows = np.flatnonzero(normal & cap_mask & has_in)
        cap_limits = np.array([
            plan.capacity[i] - max(1e-9, 1e-11 * plan.capacity[i])
            for i in cap_rows])
        debt_rows = np.flatnonzero((mode == _DEBT)
                                   & ((b > 0.0) | prop_in))
        # Certificate inputs (see _SegmentRegime.certify): per-row net
        # linear decay rate, constant-inflow edges for the safe-source
        # credit iteration, and the proportional edges of the cap
        # upper bound.
        const_idx = np.flatnonzero(const & (eff > 0.0))
        prop_idx = np.flatnonzero(prop_active)
        f_row = -np.diag(a).copy()
        # Root is assumed never to run dry (the same assumption every
        # replay path makes); pinned rows pass through constants; rows
        # without constant drains have nothing to clamp.
        always_safe = ~normal | (out_eff <= 0.0)
        always_safe[root] = True
        return _SegmentRegime(
            mode=mode, eff=eff,
            const_idx=const_idx,
            prop_idx=prop_idx,
            decay_rows=decay_rows,
            system=_SegmentPropagator(a, b),
            clamp_rows=clamp_rows, cap_rows=cap_rows,
            cap_limits=cap_limits, debt_rows=debt_rows,
            lam=lam, root=root, out_eff=out_eff, in_eff=in_eff,
            f_row=f_row, always_safe=always_safe,
            cin_snk=snk[const_idx], cin_src=src[const_idx],
            cin_eff=eff[const_idx],
            psrc=src[prop_idx], psnk=snk[prop_idx],
            prate=rate[prop_idx])

    def _integrate_segment(self, regime: _SegmentRegime, lvl: np.ndarray,
                           t: float, lam: float) -> Optional[Tuple]:
        """One segment's exact flows; staged, mutates nothing."""
        plan = self.plan
        n = len(plan.reserves)
        integ = np.maximum(regime.system.propagate(lvl, t)[1], 0.0)
        moved = np.zeros(len(plan.taps))
        if regime.const_idx.size:
            moved[regime.const_idx] = regime.eff[regime.const_idx] * t
        if regime.prop_idx.size:
            psrc = plan.src[regime.prop_idx]
            moved[regime.prop_idx] = plan.rate[regime.prop_idx] * integ[psrc]
        lost = np.zeros(n)
        reclaimed = 0.0
        if lam > 0.0 and regime.decay_rows.size:
            lost[regime.decay_rows] = lam * integ[regime.decay_rows]
            reclaimed = float(lost.sum())
        end = (lvl
               + np.bincount(plan.snk, weights=moved, minlength=n)
               - np.bincount(plan.src, weights=moved, minlength=n)
               - lost)
        end[plan.root_index] += reclaimed
        neg = np.minimum(end, 0.0)
        neg[regime.mode == _DEBT] = 0.0  # still-repaying rows stay negative
        if float(neg.sum()) < -NEGATIVE_LEVEL_SLACK:
            return None  # the located switch should preclude this
        return end, moved, lost, reclaimed

    # -- batched entry points (cohort fleets) -----------------------------------------

    def batch_clamp_ok(self, lvl: np.ndarray, span: float,
                       f: np.ndarray, linear: np.ndarray) -> np.ndarray:
        """Per-row :meth:`_clamp_safe_rows` over stacked levels."""
        return self._clamp_safe_rows(lvl, span, f, linear)

    # -- shared commit ---------------------------------------------------------------

    def _commit(self, end: np.ndarray, moved: np.ndarray,
                lost: np.ndarray, reclaimed: float) -> float:
        plan = self.plan
        n = len(plan.reserves)
        in_sum = np.bincount(plan.snk, weights=moved, minlength=n)
        out_sum = np.bincount(plan.src, weights=moved, minlength=n)
        for reserve, lv, o, i_, ls in zip(plan.reserves, end.tolist(),
                                          out_sum.tolist(), in_sum.tolist(),
                                          lost.tolist()):
            reserve._level = lv
            if o:
                reserve.total_transferred_out += o
            if i_:
                reserve.total_transferred_in += i_
            if ls:
                reserve.total_decayed += ls
        if reclaimed:
            plan.graph.root.total_deposited += reclaimed
            plan.graph.decay_policy.total_reclaimed += reclaimed
        if plan.owns_slots:
            plan._tap_flow_acc += moved
        else:
            # Span-cache plans never own the taps' accumulator slots
            # (the tick plan does); fold flows straight into the taps.
            for j in np.flatnonzero(moved):
                tap = plan.taps[j]
                tap.total_flowed = tap.total_flowed + moved[j]
        return float(moved.sum())


# ---------------------------------------------------------------------------
# cohort-batched span execution (fleets of structurally identical graphs)
# ---------------------------------------------------------------------------


def _flat_indices(plan: "FlowPlan", d: int
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(flat_src, flat_snk, row_base)`` for a ``d``-device stack.

    Cached on the lead plan (plans die with their topology epoch, so
    the cache cannot go stale); rebuilding these index arrays per
    span was a measurable share of small-cohort call overhead.
    """
    cache = getattr(plan, "_span_flat", None)
    if cache is not None and cache[0] == d:
        return cache[1], cache[2], cache[3]
    n = len(plan.reserves)
    row_base = (np.arange(d) * n)[:, None]
    flat_src = (row_base + plan.src).ravel()
    flat_snk = (row_base + plan.snk).ravel()
    plan._span_flat = (d, flat_src, flat_snk, row_base)
    return flat_src, flat_snk, row_base


def _commit_rows(tiers: List[SpanTier], ok: np.ndarray, end: np.ndarray,
                 moved: np.ndarray, lost: np.ndarray,
                 reclaimed: np.ndarray, in_sum: np.ndarray,
                 out_sum: np.ndarray,
                 results: List[Optional[float]]) -> None:
    """Commit a stacked solve device by device (bulk conversions).

    The bookkeeping is exactly :meth:`SpanTier._commit` per row; the
    whole-stack ``tolist`` conversions replace thousands of per-device
    numpy round-trips — at fleet scale the conversion overhead was a
    visible fraction of the solve.
    """
    end_l = end.tolist()
    in_l = in_sum.tolist()
    out_l = out_sum.tolist()
    lost_l = lost.tolist()
    moved_totals = moved.sum(axis=1).tolist()
    for i, tier in enumerate(tiers):
        if not ok[i]:
            continue
        plan = tier.plan
        for reserve, lv, o, i_, ls in zip(plan.reserves, end_l[i],
                                          out_l[i], in_l[i], lost_l[i]):
            reserve._level = lv
            if o:
                reserve.total_transferred_out += o
            if i_:
                reserve.total_transferred_in += i_
            if ls:
                reserve.total_decayed += ls
        rec = float(reclaimed[i])
        if rec:
            plan.graph.root.total_deposited += rec
            plan.graph.decay_policy.total_reclaimed += rec
        row = moved[i]
        if plan.owns_slots:
            plan._tap_flow_acc += row
        else:
            # Span-cache plans never own the taps' accumulator slots
            # (the tick plan does); fold flows straight into the taps.
            for j in np.flatnonzero(row):
                tap = plan.taps[j]
                tap.total_flowed = tap.total_flowed + row[j]
        results[i] = moved_totals[i]


def execute_span_batch(tiers: List[SpanTier],
                       span: float) -> List[Optional[float]]:
    """Solve one event-free span for a whole cohort in one stacked call.

    ``tiers`` belong to plans that share a
    :attr:`~repro.core.flowplan.FlowPlan.signature` and whose graphs
    run the same decay constant (the fleet batcher groups by both), so
    the continuous dynamics ``L' = A·L + b`` are literally the same
    system over different initial conditions.  Levels stack into one
    ``(n_devices, n_reserves)`` array:

    * the **diagonal** tier runs PR 1's scalar closed form elementwise
      across the stack — bit-identical per device to the per-device
      solve, since every operation is elementwise or a per-row
      bincount in the same order;
    * the **coupled** tier reuses a *single* eigendecomposition (or
      Padé propagator) from the lead tier's cached
      :class:`CoupledSystem` across the cohort's stacked ``L0`` — one
      factorization and a couple of matrix-matrix products instead of
      ``n_devices`` separate solves.  Levels commit by per-device mass
      balance, so conservation stays exact regardless of how the
      stacked linear algebra rounded.

    Refusal bounds (mid-span clamp, capacity pressure, debt, negative
    span-end dust) are evaluated **per device**: a refusing device is
    reported as ``None`` — nothing of it mutated — and the caller
    ticks it through the span instead, exactly like the scalar path.
    """
    lead = tiers[0]
    plan = lead.plan
    d = len(tiers)
    n = len(plan.reserves)
    policy = plan.graph.decay_policy
    lam = policy.lam if policy.enabled else 0.0
    lvl = np.empty((d, n))
    for i, tier in enumerate(tiers):
        lvl[i] = tier.plan._gather_levels()
    results: List[Optional[float]] = [None] * d
    ok = ~np.any(lvl < 0.0, axis=1)  # debt repayment is tick-granular
    if not ok.any():
        return results
    f = lead.prop_out + (lam if lam > 0.0 else 0.0) * plan.decay_mask
    linear = f > 0.0
    varying_in = lead.prop_sink_mask.copy()
    if lam > 0.0 and plan.any_decayable:
        varying_in[plan.root_index] = True
    coupled = bool(np.any(linear & varying_in))
    if not coupled:
        # Capacity clamping has no closed form; this is a topology
        # property, so the whole cohort passes or refuses together.
        if plan.finite_cap.size:
            cap_idx = plan.finite_cap
            gets_inflow = (lead.const_in[cap_idx] > 0.0) | varying_in[cap_idx]
            if np.any(gets_inflow):
                return results
        ok &= lead.batch_clamp_ok(lvl, span, f, linear)
        if not ok.any():
            return results
        _batch_diagonal(tiers, span, lam, lvl, f, linear, ok, results)
        return results

    # -- coupled cohort --------------------------------------------------------
    if plan.finite_cap.size:
        cap_idx = plan.finite_cap
        mass = lvl.sum(axis=1)  # all levels >= 0 on ok rows
        psrc = plan.src[plan.prop_taps]
        psnk = plan.snk[plan.prop_taps]
        prate = plan.rate[plan.prop_taps]
        best = np.repeat(mass[:, None], n, axis=1)
        row_base = _flat_indices(plan, d)[2]
        for _ in range(6):
            inflow = np.broadcast_to(lead.const_in, (d, n)).copy()
            if prate.size:
                flat = (row_base + psnk).ravel()
                inflow += np.bincount(
                    flat, weights=(prate * best[:, psrc]).ravel(),
                    minlength=d * n).reshape(d, n)
            if lam > 0.0 and plan.any_decayable:
                inflow[:, plan.root_index] += lam * best[
                    :, plan.decay_mask].sum(axis=1)
            best = np.minimum(best, lvl + inflow * span)
        ok &= ~np.any(best[:, cap_idx] > plan.capacity[cap_idx] - 1e-12,
                      axis=1)
    ok &= lead.batch_clamp_ok(lvl, span, f, linear)
    if not ok.any():
        return results

    system = lead._coupled.get(lam)
    if system is None:
        system = CoupledSystem(lead, lam)
        if len(lead._coupled) > 4:  # decay toggles are rare
            lead._coupled.clear()
        lead._coupled[lam] = system
    if system.eig is not None:
        w, v, vinv = system.eig
        c0 = lvl @ vinv.T            # (d, n) in the eigenbasis
        cb = vinv @ system.b
        z = w * span
        p1 = _phi1(z)
        p2 = _phi2(z)
        integ = ((span * (p1 * c0)
                  + (span * span) * (p2 * cb)) @ v.T).real
    else:
        propagator = system._dense_cache.get(span)
        if propagator is None:
            propagator = _expm(_augmented(system.a, system.b) * span)
            if len(system._dense_cache) > 32:
                system._dense_cache.clear()
            system._dense_cache[span] = propagator
        state = np.concatenate(
            [lvl, np.ones((d, 1)), np.zeros((d, n))], axis=1)
        integ = (state @ propagator.T)[:, n + 1:]
    integ = np.maximum(integ, 0.0)

    m = len(plan.taps)
    moved = np.zeros((d, m))
    if plan.const_taps.size:
        moved[:, plan.const_taps] = plan.rate[plan.const_taps] * span
    if plan.prop_taps.size:
        psrc = plan.src[plan.prop_taps]
        moved[:, plan.prop_taps] = plan.rate[plan.prop_taps] * integ[:, psrc]
    lost = np.zeros((d, n))
    reclaimed = np.zeros(d)
    if lam > 0.0 and plan.any_decayable:
        lost = np.where(plan.decay_mask, lam * integ, 0.0)
        reclaimed = lost.sum(axis=1)
    flat_src, flat_snk, _ = _flat_indices(plan, d)
    in_sum = np.bincount(flat_snk, weights=moved.ravel(),
                         minlength=d * n).reshape(d, n)
    out_sum = np.bincount(flat_src, weights=moved.ravel(),
                          minlength=d * n).reshape(d, n)
    end = lvl + in_sum - out_sum - lost
    end[:, plan.root_index] += reclaimed
    neg = np.minimum(end, 0.0)
    neg_rows = neg.sum(axis=1)
    ok &= ~(neg_rows < -NEGATIVE_LEVEL_SLACK)
    dusty = neg.any(axis=1) & ok
    if dusty.any():
        # Float dust on near-empty reserves: clamp to zero and let the
        # root absorb the difference so the books still balance.
        end[dusty] -= neg[dusty]
        end[dusty, plan.root_index] += neg_rows[dusty]
    for i, tier in enumerate(tiers):
        if ok[i]:
            tier.coupled_solves += 1
    _commit_rows(tiers, ok, end, moved, lost, reclaimed, in_sum, out_sum,
                 results)
    return results


def _batch_diagonal(tiers: List[SpanTier], span: float, lam: float,
                    lvl: np.ndarray, f: np.ndarray, linear: np.ndarray,
                    ok: np.ndarray, results: List[Optional[float]]) -> None:
    """The diagonal fast tier across stacked levels (elementwise)."""
    lead = tiers[0]
    plan = lead.plan
    d, n = lvl.shape
    decay_f = np.exp(-f * span)  # == 1 exactly where F == 0
    net_const = lead.const_in - lead.const_out
    steady = np.divide(net_const, f, out=np.zeros(n), where=linear)
    end = np.where(linear, steady + (lvl - steady) * decay_f,
                   lvl + net_const * span)
    drain = np.where(linear, lvl - end + net_const * span, 0.0)
    drain = np.maximum(drain, 0.0)

    m = len(plan.taps)
    moved = np.zeros((d, m))
    if plan.const_taps.size:
        moved[:, plan.const_taps] = plan.rate[plan.const_taps] * span
    if plan.prop_taps.size:
        psrc = plan.src[plan.prop_taps]
        share = np.divide(plan.rate[plan.prop_taps], f[psrc],
                          out=np.zeros(plan.prop_taps.size),
                          where=f[psrc] > 0)
        moved[:, plan.prop_taps] = drain[:, psrc] * share
        flat = (_flat_indices(plan, d)[2]
                + plan.snk[plan.prop_taps]).ravel()
        end += np.bincount(flat, weights=moved[:, plan.prop_taps].ravel(),
                           minlength=d * n).reshape(d, n)
    lost = np.zeros((d, n))
    reclaimed = np.zeros(d)
    if lam > 0.0 and plan.any_decayable:
        lost = np.where(linear & plan.decay_mask,
                        drain * np.divide(lam, f, out=np.zeros(n),
                                          where=linear), 0.0)
        reclaimed = lost.sum(axis=1)
        end[:, plan.root_index] += reclaimed
    flat_src, flat_snk, _ = _flat_indices(plan, d)
    in_sum = np.bincount(flat_snk, weights=moved.ravel(),
                         minlength=d * n).reshape(d, n)
    out_sum = np.bincount(flat_src, weights=moved.ravel(),
                          minlength=d * n).reshape(d, n)
    for i, tier in enumerate(tiers):
        if ok[i]:
            tier.diagonal_solves += 1
    _commit_rows(tiers, ok, end, moved, lost, reclaimed, in_sum, out_sum,
                 results)
