"""The span tier: closed-form integration of event-free spans.

:class:`~repro.core.flowplan.FlowPlan` owns the *tick kernel* — one
vectorized batch round, exactly equivalent to sequential per-object
firing.  This module owns the other execution mode: integrating the
continuous dynamics of a whole event-free span in one shot (the
engine's idle fast-forward).  The two tiers share the compiled
topology snapshot but solve different problems, so they live in
different files.

Per reserve the continuous dynamics are linear::

    L' = A @ L + b

where ``b`` collects the constant taps (``const_in - const_out``) and
``A`` collects everything proportional: each proportional tap of rate
``f`` from reserve ``s`` to ``k`` contributes ``-f`` to ``A[s, s]``
and ``+f`` to ``A[k, s]``, and the global decay contributes ``-lam``
to every non-exempt diagonal with ``+lam`` routed to the root's row.

Two solvers, picked per call:

* **diagonal** — when no proportional tap feeds a reserve that itself
  drains proportionally (``A`` is effectively diagonal after dropping
  rows that only *receive*), each reserve solves independently:
  ``L(t) = steady + (L0 - steady) * exp(-F t)``.  This is the scalar
  closed form from PR 1, kept verbatim as the fast tier — it is a few
  numpy vector ops with no linear algebra.
* **coupled** — chained topologies (the paper's subdivision trees,
  ``clone_reserve`` backpressure, netd/GPS reserve trees) make ``A``
  genuinely triangular-or-worse.  The system is integrated with a
  matrix exponential: an eigendecomposition of ``A`` when it is
  well-conditioned (one factorization per topology epoch, then each
  span is a couple of matrix-vector products), falling back to
  scaling-and-squaring Padé on the augmented matrix when ``A`` is
  defective (equal-rate chains produce Jordan blocks) or its
  eigenbasis is ill-conditioned.  Per-reserve *time integrals*
  ``J = ∫ L dt`` come out of the same solve (phi-functions on the
  eigenvalue path, state augmentation on the Padé path) and give every
  proportional tap's exact integrated flow ``rate * J[src]`` — levels
  are then committed by **mass balance** from those flows, so
  conservation is exact by construction no matter what the linear
  algebra rounded.

The dynamics are only *piecewise* linear in time: a constant drain
clamping on an empty reserve, a finite capacity binding, and a debt
level crossing zero (the ``max(L, 0)`` nonlinearity) each switch the
system to a different linear regime at one discrete instant.  Those
used to be refusals — the whole span fell back to tick-by-tick.  The
**segmented engine** now handles them: when the single-regime bounds
fail, the solver locates the earliest switching instant inside the
span (sampling the closed-form trajectory, then bisecting on the
propagator — the eigendecomposition when the regime's ``A`` is
healthy, the Padé exponential when it is defective), integrates
exactly to it, rewrites the regime — pin an emptied reserve at zero
and pass its constant inflow through to its drains in creation order,
freeze a capped reserve and reject its inflow, flip a debt row to
inflow-only repayment — and continues segment by segment until the
span is consumed.  Per-segment flows are staged and the whole chain
commits by mass balance in one shot (or nothing commits at all), so
conservation stays exact and a refusal still mutates nothing.

Two further regimes have exact rewrites.  An empty reserve fed by a
**live proportional tap** pins at zero and forwards its time-varying
inflow to its constant drains in creation order: the fully-fed prefix
runs at nominal rate, one *marginal* drain carries the affine
remainder ``c + Σ fⱼ·Lⱼ(t) - R`` (its row in ``A``/``b`` receives the
forwarded terms), and a **saturation monitor** on the inflow
functional ends the segment if the allocation pattern would change.
A reserve **hovering at its capacity** (drains and/or decay while
inflow exceeds outflow) pins at its level: outflows run at full rate
served from inflow, and the surplus is rejected at the deposit taps —
per-tap acceptance follows the steady per-tick cycle (headroom opened
by drains, consumed by deposits in creation order, decay last).

Residual refusals are the regimes with no supported rewrite:
time-varying (proportional or forwarded) inflow into a binding
capacity, pinned-to-pinned pass-through cascades, a non-normal root,
unlocatable or sub-resolution switch instants, and chains longer than
:data:`MAX_SEGMENTS`.  Tick-by-tick is always correct, so the
segmented engine never guesses.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from . import segkernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .flowplan import FlowPlan

#: Test hook: force the scaling-and-squaring path even when the
#: eigendecomposition is healthy, so both expm code paths stay covered.
FORCE_DENSE_EXPM = False

#: Eigenbasis condition number above which eigendecomposition results
#: are not trusted (defective or nearly-defective ``A``).
EIG_COND_LIMIT = 1e8

#: Span-end negativity beyond float noise aborts the solve (the sound
#: bounds should make this unreachable; refuse rather than guess).
NEGATIVE_LEVEL_SLACK = 1e-6

#: Hard ceiling on regime switches inside one span; a span that keeps
#: switching beyond this is refused (tick-by-tick is always correct).
MAX_SEGMENTS = 64

#: Trajectory samples per segment when scanning for the earliest
#: switching instant (crossings between samples are then bisected).
EVENT_SAMPLES = 96

# per-reserve regime modes inside one segment
_NORMAL, _DEBT, _EMPTY, _FULL, _HOVER = 0, 1, 2, 3, 4

#: Relative slack on a saturation monitor's flow-rate boundaries (the
#: pass-through functional sits exactly on a boundary at derivation
#: time; the monitor must not re-fire on that float noise).
SAT_RTOL = 1e-9


def _expm(a: np.ndarray) -> np.ndarray:
    """Matrix exponential: scaling-and-squaring with a [13/13] Padé.

    The classic Higham recipe, simplified to the highest-order
    approximant only (these matrices are small — a reserve graph's
    live topology — so the sub-order early exits are not worth their
    bookkeeping).  numpy-only by construction: scipy is not a
    dependency of this package.
    """
    n = a.shape[0]
    norm = np.linalg.norm(a, 1)
    theta13 = 5.371920351148152
    squarings = 0
    if norm > theta13:
        squarings = int(math.ceil(math.log2(norm / theta13)))
        a = a / (2.0 ** squarings)
    b = (64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
         1187353796428800.0, 129060195264000.0, 10559470521600.0,
         670442572800.0, 33522128640.0, 1323241920.0, 40840800.0,
         960960.0, 16380.0, 182.0, 1.0)
    ident = np.eye(n)
    a2 = a @ a
    a4 = a2 @ a2
    a6 = a2 @ a4
    u = a @ (a6 @ (b[13] * a6 + b[11] * a4 + b[9] * a2)
             + b[7] * a6 + b[5] * a4 + b[3] * a2 + b[1] * ident)
    v = (a6 @ (b[12] * a6 + b[10] * a4 + b[8] * a2)
         + b[6] * a6 + b[4] * a4 + b[2] * a2 + b[0] * ident)
    r = np.linalg.solve(v - u, v + u)
    for _ in range(squarings):
        r = r @ r
    return r


def _phi1(z: np.ndarray, ez: Optional[np.ndarray] = None) -> np.ndarray:
    """``(e^z - 1) / z`` with the removable singularity handled.

    ``ez`` may pass a precomputed ``np.exp(z)`` so call sites that
    already hold the exponential (every phi-propagation formula does)
    do not evaluate it again; the quotient is bit-identical either
    way since it consumes the very same ``exp`` values.
    """
    out = np.ones_like(z)
    small = np.abs(z) < 1e-3
    zl = z[~small]
    el = np.exp(zl) if ez is None else ez[~small]
    out[~small] = (el - 1.0) / zl
    zs = z[small]
    out[small] = 1.0 + zs / 2.0 + zs * zs / 6.0 + zs ** 3 / 24.0
    return out


def _phi2(z: np.ndarray, ez: Optional[np.ndarray] = None) -> np.ndarray:
    """``(e^z - 1 - z) / z^2`` with the removable singularity handled."""
    out = np.full_like(z, 0.5)
    small = np.abs(z) < 1e-3
    zl = z[~small]
    el = np.exp(zl) if ez is None else ez[~small]
    out[~small] = (el - 1.0 - zl) / (zl * zl)
    zs = z[small]
    out[small] = 0.5 + zs / 6.0 + zs * zs / 24.0 + zs ** 3 / 120.0
    return out


def _phi12(z: np.ndarray
           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused ``(e^z, phi1(z), phi2(z))`` — one exponential, one mask.

    Every propagation formula needs two or three of these on the same
    ``z``; evaluated separately each helper pays its own ``exp`` (the
    dominant cost on the stacked ``(devices, samples, n)`` grids of
    the segmented engine).  The fused form computes ``exp(z)`` and the
    small-``|z|`` mask once and feeds both quotients from them —
    bit-identical to the separate calls, which divide the identical
    ``exp`` values by the identical denominators.
    """
    ez = np.exp(z)
    small = np.abs(z) < 1e-3
    big = ~small
    zl = z[big]
    el = ez[big]
    p1 = np.ones_like(z)
    p1[big] = (el - 1.0) / zl
    p2 = np.full_like(z, 0.5)
    p2[big] = (el - 1.0 - zl) / (zl * zl)
    zs = z[small]
    p1[small] = 1.0 + zs / 2.0 + zs * zs / 6.0 + zs ** 3 / 24.0
    p2[small] = 0.5 + zs / 6.0 + zs * zs / 24.0 + zs ** 3 / 120.0
    return ez, p1, p2


def _augmented(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The ``(2n+1)``-square block matrix ``[[A, b, 0], [0], [I, 0]]``.

    One exponential of it yields both the state and its time integral:
    rows ``:n`` carry ``L' = A L + b`` (with the constant ``1`` state
    at index ``n`` driving ``b``), rows ``n+1:`` carry ``J' = L``.
    Shared by every dense (Padé) path — the scalar coupled solver, the
    batched cohort solver, and the segment propagator.
    """
    n = a.shape[0]
    m = np.zeros((2 * n + 1, 2 * n + 1))
    m[:n, :n] = a
    m[:n, n] = b
    m[n + 1:, :n] = np.eye(n)
    return m


def _eig_state_integral(eig: Tuple[np.ndarray, np.ndarray, np.ndarray],
                        b: np.ndarray, lvl: np.ndarray,
                        t: float) -> Tuple[np.ndarray, np.ndarray]:
    """``(L(t), J(t))`` on the eigenvalue path of ``L' = A L + b``.

    The one place the phi-function propagation formula lives: both the
    per-epoch :class:`CoupledSystem` and the per-regime
    :class:`_SegmentPropagator` delegate here, so the single-regime
    and segmented tiers cannot drift apart.
    """
    w, v, vinv = eig
    c0 = vinv @ lvl
    cb = vinv @ b
    z = w * t
    ez, p1, p2 = _phi12(z)
    end = (v @ (ez * c0 + t * (p1 * cb))).real
    integ = (v @ (t * (p1 * c0) + (t * t) * (p2 * cb))).real
    return end, integ


def _eig_states_batch(eig: Tuple[np.ndarray, np.ndarray, np.ndarray],
                      b: np.ndarray, lvls: np.ndarray,
                      ts: np.ndarray) -> np.ndarray:
    """``L(t)`` over per-device grids: ``(g, n) x (g, k) -> (g, k, n)``.

    The stacked form of :meth:`_SegmentPropagator.states` — the same
    phi-function formula over a batch of initial conditions and a
    batch of sample grids, one shared eigendecomposition.
    """
    w, v, vinv = eig
    c0 = lvls @ vinv.T
    cb = vinv @ b
    z = ts[:, :, None] * w
    ez = np.exp(z)
    out = (ez * c0[:, None, :]
           + ts[:, :, None] * (_phi1(z, ez) * cb)) @ v.T
    return out.real


def _eig_state_at_batch(eig: Tuple[np.ndarray, np.ndarray, np.ndarray],
                        b: np.ndarray, lvls: np.ndarray,
                        t: np.ndarray) -> np.ndarray:
    """``L(t_i)`` per device (stacked bisection queries)."""
    w, v, vinv = eig
    z = t[:, None] * w
    ez = np.exp(z)
    return ((ez * (lvls @ vinv.T)
             + t[:, None] * (_phi1(z, ez) * (vinv @ b))) @ v.T).real


def _eig_propagate_batch(eig: Tuple[np.ndarray, np.ndarray, np.ndarray],
                         b: np.ndarray, lvls: np.ndarray,
                         t: np.ndarray) -> np.ndarray:
    """``J(t_i) = ∫_0^{t_i} L dt`` per device (stacked integration).

    The segmented engine commits levels by mass balance from the
    integrated flows, so only the integral is needed here.
    """
    w, v, vinv = eig
    c0 = lvls @ vinv.T
    cb = vinv @ b
    z = t[:, None] * w
    tc = t[:, None]
    _, p1, p2 = _phi12(z)
    return ((tc * (p1 * c0) + (tc * tc) * (p2 * cb))
            @ v.T).real


def _trusted_eig(a: np.ndarray
                 ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """``(w, V, V^-1)`` when the eigenbasis of ``a`` is trustworthy.

    Returns None for defective or nearly-defective matrices (equal-rate
    chains produce Jordan blocks): the basis must be well-conditioned
    *and* actually reconstruct ``a`` — a nearly defective matrix can
    pass the condition gate yet round badly.
    """
    try:
        w, v = np.linalg.eig(a)
        cond = np.linalg.cond(v)
        if not np.isfinite(cond) or cond > EIG_COND_LIMIT:
            return None
        vinv = np.linalg.inv(v)
    except np.linalg.LinAlgError:  # pragma: no cover - numpy internal
        return None
    scale = max(1.0, float(np.abs(a).max()))
    recon = (v * w) @ vinv
    if float(np.abs(recon - a).max()) > 1e-9 * scale:
        return None
    return w, v, vinv


class CoupledSystem:
    """``L' = A L + b`` for one topology epoch at one decay constant.

    Built once per (plan, lam) and cached on the :class:`SpanTier`:
    the expensive part — the eigendecomposition, or per-span Padé
    exponentials of the augmented matrix — amortizes across every span
    the epoch serves.
    """

    def __init__(self, tier: "SpanTier", lam: float) -> None:
        plan = tier.plan
        n = len(plan.reserves)
        a = np.zeros((n, n))
        for j in plan.prop_taps:
            s, k, f = int(plan.src[j]), int(plan.snk[j]), plan.rate[j]
            a[s, s] -= f
            a[k, s] += f
        if lam > 0.0 and plan.any_decayable:
            decayable = np.flatnonzero(plan.decay_mask)
            a[decayable, decayable] -= lam
            a[plan.root_index, decayable] += lam
        self.a = a
        self.b = tier.const_in - tier.const_out
        self.n = n
        #: (eigenvalues, V, V^-1) when the eigenbasis is trusted.
        self.eig: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        #: span -> expm of the augmented matrix (Padé fallback path).
        self._dense_cache: Dict[float, np.ndarray] = {}
        #: Telemetry/testing: which solve path this system uses.
        self.mode = "dense"
        if not FORCE_DENSE_EXPM:
            self.eig = _trusted_eig(self.a)
            if self.eig is not None:
                self.mode = "eig"

    def propagate(self, lvl: np.ndarray,
                  span: float) -> Tuple[np.ndarray, np.ndarray]:
        """``(L(span), J(span))`` where ``J = ∫_0^span L dt``."""
        if self.eig is not None:
            return _eig_state_integral(self.eig, self.b, lvl, span)
        propagator = self._dense_cache.get(span)
        if propagator is None:
            propagator = _expm(_augmented(self.a, self.b) * span)
            if len(self._dense_cache) > 32:  # unbounded-span safety valve
                self._dense_cache.clear()
            self._dense_cache[span] = propagator
        n = self.n
        state = np.concatenate([lvl, [1.0], np.zeros(n)])
        result = propagator @ state
        return result[:n], result[n + 1:]


class _SegmentPropagator:
    """Closed-form evaluator for one regime's ``L' = A L + b``.

    Unlike :class:`CoupledSystem` (one system per topology epoch) a
    propagator describes one *regime* — the linear system left after a
    segment's pins and drops — and must answer trajectory queries at
    arbitrary instants for event location.  The eigenvalue path makes
    those queries a couple of matrix-vector products; the Padé path
    pays one augmented-matrix exponential per query (regimes are
    small, and event location runs only when a switch is near).
    """

    def __init__(self, a: np.ndarray, b: np.ndarray) -> None:
        self.a = a
        self.b = b
        self.n = a.shape[0]
        self.eig = None if FORCE_DENSE_EXPM else _trusted_eig(a)

    def states(self, lvl: np.ndarray, ts: np.ndarray) -> np.ndarray:
        """``L(t)`` stacked over a *uniform* ascending grid ``ts``.

        The grid must start at its own spacing (``ts[k] = (k+1) * dt``)
        — exactly the event scan's ``linspace`` — so the dense path can
        propagate one per-step exponential instead of one per sample.
        """
        if self.eig is not None:
            w, v, vinv = self.eig
            c0 = vinv @ lvl
            cb = vinv @ self.b
            z = np.multiply.outer(ts, w)
            ez = np.exp(z)
            out = (ez * c0 + ts[:, None] * (_phi1(z, ez) * cb)) @ v.T
            return out.real
        n = self.n
        dt = ts[0] if len(ts) == 1 else ts[1] - ts[0]
        step = _expm(_augmented(self.a, self.b) * dt)
        state = np.concatenate([lvl, [1.0], np.zeros(n)])
        out = np.empty((len(ts), n))
        for k in range(len(ts)):
            state = step @ state
            out[k] = state[:n]
        return out

    def state_at(self, lvl: np.ndarray, t: float) -> np.ndarray:
        """``L(t)`` at one arbitrary instant (bisection queries)."""
        if self.eig is not None:
            w, v, vinv = self.eig
            z = w * t
            ez = np.exp(z)
            return (v @ (ez * (vinv @ lvl)
                         + t * (_phi1(z, ez) * (vinv @ self.b)))).real
        state = np.concatenate([lvl, [1.0], np.zeros(self.n)])
        return (_expm(_augmented(self.a, self.b) * t) @ state)[:self.n]

    def propagate(self, lvl: np.ndarray,
                  t: float) -> Tuple[np.ndarray, np.ndarray]:
        """``(L(t), J(t))`` where ``J = ∫_0^t L dt``."""
        if self.eig is not None:
            return _eig_state_integral(self.eig, self.b, lvl, t)
        state = np.concatenate([lvl, [1.0], np.zeros(self.n)])
        result = _expm(_augmented(self.a, self.b) * t) @ state
        return result[:self.n], result[self.n + 1:]


class _SegmentRegime:
    """One piecewise-linear regime: pins, effective rates, monitors.

    Everything here is a pure function of the per-reserve mode vector,
    the decay constant, and the *pinned levels* (a hovering reserve's
    proportional drains and decay loss turn into constants scaled by
    its pinned level; a forwarded pass-through's allocation split is
    set by the levels at derivation time), so regimes are cached on
    the tier keyed by the full derived spec — levels enter the
    propagator only as its initial condition.
    """

    __slots__ = ("mode", "eff", "const_idx", "prop_idx", "decay_rows",
                 "system", "clamp_rows", "cap_rows", "cap_limits",
                 "debt_rows", "debt_slope", "debt_linear", "lam",
                 "root", "out_eff", "in_eff", "f_row", "always_safe",
                 "cin_snk", "cin_src", "cin_eff", "psrc", "psnk",
                 "prate", "hov_idx", "hov_rate", "pin_rows",
                 "pin_rates", "fwd", "sat", "has_monitors")

    def __init__(self, **kw) -> None:
        for name in self.__slots__:
            setattr(self, name, kw[name])

    def certify_batch(self, lvl: np.ndarray, t: np.ndarray,
                      ltol: np.ndarray, crossed: np.ndarray,
                      crossed_sat: np.ndarray) -> np.ndarray:
        """Sound no-switch certificates for stacked ``[0, t_i]``.

        ``lvl`` is ``(g, n)``; ``t``/``ltol`` are per-device; crossing
        rows/monitors are excluded per device — their switch *is* the
        segment boundary.  The sampled event scan can miss a boundary
        excursion narrower than its grid (a capped reserve spiking
        over the cap and back, a drained reserve dipping below zero
        and recovering), which would silently commit flows
        tick-by-tick execution clamps.  A segment therefore only
        commits when these closed-form bounds hold over its whole
        interval:

        * **clamp rows** — the inflow-free lower bound, iteratively
          refined by crediting constant inflow from provably safe
          sources (the root, pinned reserves, and rows the previous
          iterate certified — the continuous analogue of the tier's
          ``early_feeds`` refinement);
        * **cap rows** — the iterated inflow upper bound (inflow at
          the previous bound, outflow ignored), the same bound the
          coupled tier refuses on;
        * **saturation monitors** — the forwarded functional bounded
          through the same row bounds: its sources' lower bounds keep
          it above the fully-fed prefix, their upper bounds keep it
          below the marginal drain's nominal rate.

        Debt rows need no certificate: their trajectories are monotone
        non-decreasing (inflow only), so the sampler cannot miss a
        crossing.  A failed certificate refuses the device — ticking
        is always correct.
        """
        g, n = lvl.shape
        ok = np.ones(g, dtype=bool)
        normal = self.mode == _NORMAL
        tcol = t[:, None]
        need_lower = self.sat[3].size > 0
        clamp_sel = np.zeros((g, n), dtype=bool)
        clamp_sel[:, self.clamp_rows] = True
        clamp_sel &= ~crossed
        safe = None
        if clamp_sel.any() or need_lower:
            safe = np.broadcast_to(self.always_safe, (g, n)).copy()
            f = self.f_row
            linear = f > 0.0
            decay_f = np.exp(-f * tcol)
            lower = np.zeros((g, n))
            for _ in range(4):
                credit = np.zeros((g, n))
                if self.cin_snk.size:
                    np.add.at(credit, (slice(None), self.cin_snk),
                              self.cin_eff * safe[:, self.cin_src])
                deficit = np.maximum(self.out_eff - credit, 0.0)
                per_f = np.divide(deficit, f, out=np.zeros((g, n)),
                                  where=linear)
                lower = np.where(linear,
                                 lvl * decay_f - per_f * (1.0 - decay_f),
                                 lvl - deficit * tcol)
                refined = (self.always_safe
                           | (normal & (lower >= -4.0 * ltol[:, None])))
                if (refined == safe).all():
                    break
                safe = refined
            if clamp_sel.any():
                ok &= ~(clamp_sel & ~safe).any(axis=1)
        best = None
        if self.cap_rows.size or need_lower:
            mass = np.maximum(lvl, 0.0).sum(axis=1)
            best = np.repeat(mass[:, None], n, axis=1)
            for _ in range(6):
                inflow = np.broadcast_to(self.in_eff, (g, n)).copy()
                if self.prate.size:
                    np.add.at(inflow, (slice(None), self.psnk),
                              self.prate * best[:, self.psrc])
                if self.lam > 0.0 and self.decay_rows.size:
                    inflow[:, self.root] += self.lam * best[
                        :, self.decay_rows].sum(axis=1)
                best = np.minimum(best, lvl + inflow * tcol)
            if self.cap_rows.size:
                over = best[:, self.cap_rows] > self.cap_limits
                over &= ~crossed[:, self.cap_rows]
                ok &= ~over.any(axis=1)
        sat_ptr, sat_src, sat_wts, sat_c, sat_lo, sat_hi, sat_tol = self.sat
        for m_i in range(sat_c.shape[0]):
            span_lo = np.full(g, sat_c[m_i])
            span_hi = np.full(g, sat_c[m_i])
            for ti in range(int(sat_ptr[m_i]), int(sat_ptr[m_i + 1])):
                s = sat_src[ti]
                w = sat_wts[ti]
                span_lo += w * np.maximum(lower[:, s], 0.0)
                span_hi += w * best[:, s]
            good = ((span_lo >= sat_lo[m_i] - sat_tol[m_i])
                    & (span_hi <= sat_hi[m_i] + sat_tol[m_i]))
            ok &= good | crossed_sat[:, m_i]
        return ok

    def certify(self, lvl: np.ndarray, t: float, ltol: float,
                crossed: np.ndarray,
                crossed_sat: np.ndarray) -> bool:
        """Scalar entry point over :meth:`certify_batch`."""
        return bool(self.certify_batch(
            lvl[None, :], np.array([t]), np.array([ltol]),
            crossed[None, :], crossed_sat[None, :])[0])

    def _violated(self, states: np.ndarray, ltol: float) -> np.ndarray:
        """Per-sample ``True`` where any switch condition holds."""
        return segkernel.violated_at(
            states, self.clamp_rows, self.cap_rows, self.cap_limits,
            self.debt_rows, np.full(states.shape[0], ltol), *self.sat)

    def crossing_marks(self, state_hi: np.ndarray, ltol: float
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Which rows / saturation monitors violate at ``state_hi``."""
        crossed = np.zeros(state_hi.shape[0], dtype=bool)
        if self.clamp_rows.size:
            rows = self.clamp_rows
            crossed[rows[state_hi[rows] < -ltol]] = True
        if self.cap_rows.size:
            rows = self.cap_rows
            crossed[rows[state_hi[rows] > self.cap_limits]] = True
        if self.debt_rows.size:
            rows = self.debt_rows
            crossed[rows[state_hi[rows] > -ltol]] = True
        sat_ptr, sat_src, sat_wts, sat_c, sat_lo, sat_hi, sat_tol = self.sat
        crossed_sat = np.zeros(sat_c.shape[0], dtype=bool)
        for m_i in range(sat_c.shape[0]):
            y = sat_c[m_i]
            for ti in range(int(sat_ptr[m_i]), int(sat_ptr[m_i + 1])):
                y = y + sat_wts[ti] * state_hi[sat_src[ti]]
            if (y < sat_lo[m_i] - sat_tol[m_i]
                    or y > sat_hi[m_i] + sat_tol[m_i]):
                crossed_sat[m_i] = True
        return crossed, crossed_sat

    def crossing_marks_batch(self, state_hi: np.ndarray,
                             ltol: np.ndarray
                             ) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked :meth:`crossing_marks`: ``(g, n)`` states at once."""
        g = state_hi.shape[0]
        crossed = np.zeros(state_hi.shape, dtype=bool)
        if self.clamp_rows.size:
            rows = self.clamp_rows
            crossed[:, rows] |= state_hi[:, rows] < -ltol[:, None]
        if self.cap_rows.size:
            rows = self.cap_rows
            crossed[:, rows] |= state_hi[:, rows] > self.cap_limits
        if self.debt_rows.size:
            rows = self.debt_rows
            crossed[:, rows] |= state_hi[:, rows] > -ltol[:, None]
        sat_ptr, sat_src, sat_wts, sat_c, sat_lo, sat_hi, sat_tol = self.sat
        crossed_sat = np.zeros((g, sat_c.shape[0]), dtype=bool)
        for m_i in range(sat_c.shape[0]):
            y = np.full(g, sat_c[m_i])
            for ti in range(int(sat_ptr[m_i]), int(sat_ptr[m_i + 1])):
                y = y + sat_wts[ti] * state_hi[:, sat_src[ti]]
            crossed_sat[:, m_i] = ((y < sat_lo[m_i] - sat_tol[m_i])
                                   | (y > sat_hi[m_i] + sat_tol[m_i]))
        return crossed, crossed_sat

    def first_switch(self, lvl: np.ndarray, span: float, ltol: float
                     ) -> Optional[Tuple[float, np.ndarray, np.ndarray]]:
        """Earliest instant in ``(0, span]`` a switch condition fires.

        Samples the closed-form trajectory on a uniform grid (the scan
        itself runs in :mod:`repro.core.segkernel` — compiled when
        numba is available), then bisects the first violating bracket
        down to the propagator's resolution.  Returns ``(instant,
        crossing-row mask, crossing-monitor mask)``: the instant is
        the last *clean* time — integrating to it lands exactly on the
        regime boundary — and the masks mark the rows and saturation
        monitors violating just past it, which :meth:`certify`
        excludes from the segment's no-switch certificate (their
        switch *is* the boundary).  None means no sampled condition
        fires; the caller still certifies the whole interval before
        committing.
        """
        if not self.has_monitors:
            return None
        ts = np.linspace(span / EVENT_SAMPLES, span, EVENT_SAMPLES)
        first = int(segkernel.first_hits(
            self.system.states(lvl, ts)[None, :, :], self.clamp_rows,
            self.cap_rows, self.cap_limits, self.debt_rows,
            np.array([ltol]), *self.sat)[0])
        if first < 0:
            return None
        lo = 0.0 if first == 0 else float(ts[first - 1])
        hi = float(ts[first])
        floor = max(1e-12 * span, 1e-15)
        for _ in range(64):
            if hi - lo <= floor:
                break
            mid = 0.5 * (lo + hi)
            state = self.system.state_at(lvl, mid)
            if self._violated(state[None, :], ltol)[0]:
                hi = mid
            else:
                lo = mid
        crossed, crossed_sat = self.crossing_marks(
            self.system.state_at(lvl, hi), ltol)
        return lo, crossed, crossed_sat


class SpanTier:
    """Closed-form span execution over one compiled plan's topology."""

    def __init__(self, plan: "FlowPlan") -> None:
        self.plan = plan
        n = len(plan.reserves)
        self.const_in = np.zeros(n)
        self.const_out = np.zeros(n)
        self.prop_out = np.zeros(n)
        self.prop_sink_mask = np.zeros(n, dtype=bool)
        first_drain: Dict[int, int] = {}
        for j in range(len(plan.taps)):
            s, k, r = int(plan.src[j]), int(plan.snk[j]), plan.rate[j]
            if plan.const_mask[j]:
                self.const_out[s] += r
                self.const_in[k] += r
                first_drain.setdefault(s, j)
            else:
                self.prop_out[s] += r
                self.prop_sink_mask[k] = True
        #: Constant feeds that land *before* their sink's first
        #: constant drain in creation order: ``(sink, source, rate)``.
        #: Within every tick these deposit ahead of the drain, so —
        #: provided the feed's own source cannot clamp — they are
        #: guaranteed income the clamp bound may credit (the
        #: pass-through shapes: task-manager pools, relay junctions).
        self.early_feeds = [
            (int(plan.snk[j]), int(plan.src[j]), plan.rate[j])
            for j in range(len(plan.taps))
            if plan.const_mask[j]
            and j < first_drain.get(int(plan.snk[j]), len(plan.taps))]
        #: Per-reserve tap adjacency (index lists into the plan's tap
        #: arrays), precomputed once per tier: the segmented engine's
        #: regime derivation walks these per segment, and plans are
        #: immutable for the tier's lifetime.
        self.const_into: Dict[int, List[int]] = {}
        self.const_from: Dict[int, List[int]] = {}
        self.prop_into: Dict[int, List[int]] = {}
        self.prop_from: Dict[int, List[int]] = {}
        for j in range(len(plan.taps)):
            s, k = int(plan.src[j]), int(plan.snk[j])
            if plan.const_mask[j]:
                self.const_into.setdefault(k, []).append(j)
                self.const_from.setdefault(s, []).append(j)
            else:
                self.prop_into.setdefault(k, []).append(j)
                self.prop_from.setdefault(s, []).append(j)
        #: CSR tap adjacency for the compiled mode-derivation kernel
        #: (:func:`repro.core.segkernel.derive_modes`), built lazily
        #: from the dicts above in their exact iteration order.
        self._modes_csr: Optional[tuple] = None
        #: lam -> the coupled linear system at that decay constant.
        self._coupled: Dict[float, CoupledSystem] = {}
        #: (lam, mode bytes) -> cached :class:`_SegmentRegime` (the
        #: eigendecomposition amortizes across every segment that
        #: re-enters the same regime; persistent clamped regimes
        #: re-enter one per macro-step).
        self._regimes: Dict[Tuple[float, bytes], _SegmentRegime] = {}
        #: Telemetry: spans solved by each tier (diagnostics/tests).
        self.diagonal_solves = 0
        self.coupled_solves = 0
        self.segmented_solves = 0

    # -- shared refusal bounds ---------------------------------------------------

    def _clamp_safe_rows(self, lvl: np.ndarray, span: float,
                         f: np.ndarray, linear: np.ndarray
                         ) -> np.ndarray:
        """Per-row ``True`` iff no constant drain can clamp in the span.

        ``lvl`` is stacked ``(d, n)``.  First pass: ``L' >= -const_out
        - F*L`` (every inflow ignored) is monotone decreasing, so the
        span-end value of that lower-bound ODE bounds the whole
        trajectory.  Sound for coupled systems too: coupling only
        ever *adds* inflow.

        Reserves that fail the inflow-free bound get a refined pass:
        constant feeds that fire *before* the reserve's first drain
        within every tick (:attr:`early_feeds`), and whose own source
        is already proven clamp-free, are guaranteed income — the
        effective drain is only the deficit beyond them.  This is
        what admits pass-through shapes (a junction fed at 14 mW and
        drained at 14 mW sits at level ~0 forever, which the
        inflow-free bound can never clear) while staying exactly as
        sound: each iterate credits only feeds from reserves proven
        safe by the previous iterate, and tick execution delivers
        those deposits ahead of the drain by creation order.

        ``span`` may be a scalar (the whole stack shares one horizon)
        or a ``(d,)`` vector of per-row spans (the independent
        scheduler's heterogeneous-horizon cohorts); the bound is
        evaluated at each row's own span either way, bit-identically —
        a vector of equal spans multiplies out to the exact same
        products as the shared scalar.
        """
        d, n = lvl.shape
        const_out = self.const_out
        draining = const_out > 0.0
        if not draining.any():
            return np.ones(d, dtype=bool)
        spans = np.broadcast_to(np.asarray(span, dtype=float),
                                (d,))[:, None]
        per_f = np.divide(const_out, f, out=np.zeros(n), where=linear)
        decay_f = np.exp(-spans * f)
        lower = np.where(linear,
                         lvl * decay_f - per_f * (1.0 - decay_f),
                         lvl - const_out * spans)
        safe = (lower >= 0.0) | ~draining
        rows_ok = safe.all(axis=1)
        if rows_ok.all() or not self.early_feeds:
            return rows_ok
        for _ in range(3):
            guaranteed = np.zeros((d, n))
            for snk, src, rate in self.early_feeds:
                guaranteed[:, snk] += rate * safe[:, src]
            deficit = np.maximum(const_out - guaranteed, 0.0)
            per_f = np.divide(deficit, f, out=np.zeros((d, n)),
                              where=linear)
            lower = np.where(linear,
                             lvl * decay_f - per_f * (1.0 - decay_f),
                             lvl - deficit * spans)
            refined = (lower >= 0.0) | ~draining
            if (refined == safe).all():
                break
            safe = refined  # monotone: deficit only shrinks
        return safe.all(axis=1)

    def _clamp_bound_ok(self, lvl: np.ndarray, span: float,
                        f: np.ndarray, linear: np.ndarray) -> bool:
        """Scalar entry point over :meth:`_clamp_safe_rows`."""
        return bool(self._clamp_safe_rows(lvl[None, :], span, f,
                                          linear)[0])

    # -- entry point ---------------------------------------------------------------

    def execute(self, span: float) -> Optional[float]:
        """Integrate flows and decay over ``span`` seconds in one shot.

        Returns total tap flow, or None when no closed form applies
        (caller must tick instead); a None return mutates nothing.

        The single-regime tiers run first, verbatim (their arithmetic
        carries bit-identical contracts); whenever they would have
        refused — debt entry, a possible mid-span clamp, capacity
        pressure — the span falls through to the segmented engine,
        which integrates regime to regime across the switch instants
        and only refuses the residual shapes it cannot rewrite.
        """
        plan = self.plan
        n = len(plan.reserves)
        policy = plan.graph.decay_policy
        lam = policy.lam if policy.enabled else 0.0
        lvl = plan._gather_levels()
        if np.any(lvl < 0.0):
            # Debt entry: the max(L, 0) nonlinearity is itself a
            # regime — repayment segments instead of refusing.
            return self._execute_segmented(span, lam, lvl)
        f = self.prop_out + (lam if lam > 0.0 else 0.0) * plan.decay_mask
        linear = f > 0.0
        # Reserves whose drains read their level need constant inflow
        # for the *diagonal* solver; anything else is a coupled system.
        varying_in = self.prop_sink_mask.copy()
        if lam > 0.0 and plan.any_decayable:
            varying_in[plan.root_index] = True
        result: Optional[float] = None
        if np.any(linear & varying_in):
            result = self._execute_coupled(span, lam, lvl, f, linear)
        elif plan.finite_cap.size and np.any(
                (self.const_in[plan.finite_cap] > 0.0)
                | varying_in[plan.finite_cap]):
            result = None  # a capacity could bind: locate the instant
        elif not self._clamp_bound_ok(lvl, span, f, linear):
            result = None  # a drain could clamp: locate the instant
        else:
            result = self._execute_diagonal(span, lam, lvl, f, linear)
        if result is None:
            result = self._execute_segmented(span, lam, lvl)
        return result

    # -- the diagonal fast tier (PR 1's scalar closed form, verbatim) --------------

    def _execute_diagonal(self, span: float, lam: float, lvl: np.ndarray,
                          f: np.ndarray, linear: np.ndarray
                          ) -> Optional[float]:
        plan = self.plan
        n = len(plan.reserves)
        decay_f = np.exp(-f * span)  # == 1 exactly where F == 0
        net_const = self.const_in - self.const_out
        steady = np.divide(net_const, f, out=np.zeros(n), where=linear)
        end = np.where(linear, steady + (lvl - steady) * decay_f,
                       lvl + net_const * span)
        # Mass balance: everything a linear reserve lost to its
        # proportional drains and decay over the span.
        drain = np.where(linear, lvl - end + net_const * span, 0.0)
        drain = np.maximum(drain, 0.0)

        moved = np.zeros(len(plan.taps))
        if plan.const_taps.size:
            moved[plan.const_taps] = plan.rate[plan.const_taps] * span
        if plan.prop_taps.size:
            psrc = plan.src[plan.prop_taps]
            share = np.divide(plan.rate[plan.prop_taps], f[psrc],
                              out=np.zeros(plan.prop_taps.size),
                              where=f[psrc] > 0)
            moved[plan.prop_taps] = drain[psrc] * share
            end += np.bincount(plan.snk[plan.prop_taps],
                               weights=moved[plan.prop_taps], minlength=n)
        lost = np.zeros(n)
        reclaimed = 0.0
        if lam > 0.0 and plan.any_decayable:
            lost = np.where(linear & plan.decay_mask,
                            drain * np.divide(lam, f, out=np.zeros(n),
                                              where=linear), 0.0)
            reclaimed = float(lost.sum())
            end[plan.root_index] += reclaimed
        self.diagonal_solves += 1
        return self._commit(end, moved, lost, reclaimed)

    # -- the coupled tier (matrix exponential) --------------------------------------

    def _execute_coupled(self, span: float, lam: float, lvl: np.ndarray,
                         f: np.ndarray, linear: np.ndarray
                         ) -> Optional[float]:
        plan = self.plan
        n = len(plan.reserves)
        # Capacity pressure: bound each trajectory's maximum.  Since
        # mass is conserved and levels stay non-negative, every level
        # is bounded by the total mass; refining through
        # ``U <- lvl + span * (const_in + P_prop @ U)`` keeps a sound
        # pointwise bound at each iterate (inflow integrated at the
        # previous bound, outflow ignored), and the elementwise best
        # over a few iterates is tight enough for realistic headroom.
        if plan.finite_cap.size:
            cap_idx = plan.finite_cap
            mass = float(lvl.sum())  # all levels >= 0 here
            psrc = plan.src[plan.prop_taps]
            psnk = plan.snk[plan.prop_taps]
            prate = plan.rate[plan.prop_taps]
            best = np.full(n, mass)
            for _ in range(6):
                inflow = self.const_in.copy()
                if prate.size:
                    inflow += np.bincount(psnk, weights=prate * best[psrc],
                                          minlength=n)
                if lam > 0.0 and plan.any_decayable:
                    inflow[plan.root_index] += lam * float(
                        best[plan.decay_mask].sum())
                best = np.minimum(best, lvl + inflow * span)
            if np.any(best[cap_idx] > plan.capacity[cap_idx] - 1e-12):
                return None
        if not self._clamp_bound_ok(lvl, span, f, linear):
            return None

        system = self._coupled.get(lam)
        if system is None:
            system = CoupledSystem(self, lam)
            if len(self._coupled) > 4:  # decay toggles are rare
                self._coupled.clear()
            self._coupled[lam] = system
        integ = np.maximum(system.propagate(lvl, span)[1], 0.0)

        moved = np.zeros(len(plan.taps))
        if plan.const_taps.size:
            moved[plan.const_taps] = plan.rate[plan.const_taps] * span
        if plan.prop_taps.size:
            psrc = plan.src[plan.prop_taps]
            moved[plan.prop_taps] = plan.rate[plan.prop_taps] * integ[psrc]
        lost = np.zeros(n)
        reclaimed = 0.0
        if lam > 0.0 and plan.any_decayable:
            lost = np.where(plan.decay_mask, lam * integ, 0.0)
            reclaimed = float(lost.sum())
        # Commit levels by mass balance from the integrated flows, not
        # the ODE output: conservation is then exact by construction
        # (the two agree analytically; float-wise they differ in the
        # last ulps, and mass balance is the one the audits check).
        end = (lvl
               + np.bincount(plan.snk, weights=moved, minlength=n)
               - np.bincount(plan.src, weights=moved, minlength=n)
               - lost)
        end[plan.root_index] += reclaimed
        neg = np.minimum(end, 0.0)
        if float(neg.sum()) < -NEGATIVE_LEVEL_SLACK:
            return None  # bounds should preclude this; never guess
        if neg.any():
            # Float dust on near-empty reserves: clamp to zero and let
            # the root absorb the difference so the books still balance.
            end -= neg
            end[plan.root_index] += float(neg.sum())
        self.coupled_solves += 1
        return self._commit(end, moved, lost, reclaimed)

    # -- the segmented engine (piecewise-linear regime switching) ------------------

    def _execute_segmented(self, span: float, lam: float,
                           lvl: np.ndarray) -> Optional[float]:
        """Integrate a span as a chain of linear-regime segments.

        Every regime change — a constant drain clamping on an emptied
        reserve, a finite capacity binding, a debt level crossing zero
        — happens at one locatable instant; between two instants the
        dynamics are plain ``L' = A L + b`` for the regime's reduced
        system.  The loop derives the regime from the working levels,
        locates the earliest switch, integrates exactly to it, and
        repeats on the rewritten system until the span is consumed.

        Everything is *staged*: per-segment flows, decay losses and the
        working levels accumulate on copies, and only a fully solved
        chain commits (by mass balance, so conservation stays exact no
        matter how many segments the span crossed).  A None return —
        an unsupported regime, an unlocatable or sub-resolution switch,
        or a chain past :data:`MAX_SEGMENTS` — mutates nothing and the
        caller ticks, which is always correct.
        """
        plan = self.plan
        n = len(plan.reserves)
        m = len(plan.taps)
        root = plan.root_index
        lvl = lvl.copy()  # staged: the caller's gather stays pristine
        scale = max(1.0, float(np.abs(lvl).max()))
        ltol = 1e-11 * scale
        def absorb_dust() -> None:
            # Float dust from a located crossing: clamp to zero and
            # let the root absorb the difference (same book-balancing
            # the coupled tier applies to span-end dust).
            dust = (lvl < 0.0) & (lvl >= -4.0 * ltol)
            if dust.any():
                lvl[root] += float(lvl[dust].sum())
                lvl[dust] = 0.0

        moved = np.zeros(m)
        lost = np.zeros(n)
        reclaimed = 0.0
        remaining = float(span)
        segments = 0
        min_seg = max(1e-12, 1e-10 * span)
        locate_wall = 0.0
        integrate_wall = 0.0
        while remaining > 1e-9 * span:
            if segments >= MAX_SEGMENTS:
                return None
            absorb_dust()
            regime = self._regime_for(lvl, lam, ltol)
            if regime is None:
                return None
            t0 = perf_counter()
            # Certify-first fast path: most segments are quiet (no
            # switch inside them), and for those the no-switch
            # certificate alone is enough — the 96-sample scan never
            # needs to run.  Debt repayments are the one monitor the
            # certificate does not cover, but a purely constant-fed
            # debt row is linear (``L = L0 + b t``), so its crossing
            # is analytic; the candidate boundary is the earliest
            # such crossing (or the span end) and the certificate
            # rules out every clamp/cap/saturation switch before it.
            seg = None
            if not regime.debt_rows.size or bool(regime.debt_linear.all()):
                t_cand = remaining
                for r_i in range(regime.debt_rows.shape[0]):
                    slope = float(regime.debt_slope[r_i])
                    if slope > 0.0:
                        row = int(regime.debt_rows[r_i])
                        t_star = (-ltol - lvl[row]) / slope
                        if t_star < t_cand:
                            t_cand = t_star
                crossed = np.zeros(n, dtype=bool)
                if t_cand < remaining:
                    for r_i in range(regime.debt_rows.shape[0]):
                        slope = float(regime.debt_slope[r_i])
                        if slope <= 0.0:
                            continue
                        row = int(regime.debt_rows[r_i])
                        if ((-ltol - lvl[row]) / slope
                                <= t_cand * (1.0 + 1e-12)):
                            crossed[row] = True
                crossed_sat = np.zeros(regime.sat[3].shape[0],
                                       dtype=bool)
                if t_cand >= min_seg and regime.certify(
                        lvl, t_cand, ltol, crossed, crossed_sat):
                    seg = (t_cand, crossed, crossed_sat,
                           t_cand < remaining)
            if seg is None:
                switch = regime.first_switch(lvl, remaining, ltol)
                if switch is None:
                    seg = (remaining, np.zeros(n, dtype=bool),
                           np.zeros(regime.sat[3].shape[0],
                                    dtype=bool), False)
                else:
                    seg = (switch[0], switch[1], switch[2], True)
                if seg[0] < min_seg:
                    return None  # coincident events: no progress
                if not regime.certify(lvl, seg[0], ltol, seg[1],
                                      seg[2]):
                    return None  # sub-sample excursion not ruled out
            seg_span, crossed, crossed_sat, located = seg
            locate_wall += perf_counter() - t0
            t0 = perf_counter()
            step = self._integrate_segment(regime, lvl, seg_span, lam)
            integrate_wall += perf_counter() - t0
            if step is None:
                return None
            lvl, seg_moved, seg_lost, seg_reclaimed = step
            moved += seg_moved
            lost += seg_lost
            reclaimed += seg_reclaimed
            segments += 1
            remaining = remaining - seg_span if located else 0.0
        if segments == 0:
            return 0.0
        absorb_dust()
        graph = plan.graph
        graph.span_segments += segments
        graph.span_switches += segments - 1
        graph.span_locate_wall_s += locate_wall
        graph.span_integrate_wall_s += integrate_wall
        self.segmented_solves += 1
        return self._commit(lvl, moved, lost, reclaimed)

    def _regime_for(self, lvl: np.ndarray, lam: float,
                    ltol: float) -> Optional[_SegmentRegime]:
        """The cached regime for the current levels (or None).

        The key covers the whole derived spec, not just the mode
        vector: hover pins and forwarded allocations fold *levels*
        into effective rates, so two visits to the same mode vector
        can still be different linear systems.  The common regimes
        (no pins, or pins with purely rate-derived allocations) hash
        to stable keys and hit every re-entry.
        """
        derived = self._derive_modes(lvl, lam, ltol)
        if derived is None:
            return None
        mode, eff, hov, pin_loss, fwd = derived
        key = (lam, mode.tobytes(), eff.tobytes(), hov.tobytes(),
               pin_loss.tobytes(), fwd)
        regime = self._regimes.get(key)
        if regime is None:
            regime = self._build_regime(mode, eff, hov, pin_loss, fwd,
                                        lam)
            if len(self._regimes) > 16:  # regime-churn safety valve
                self._regimes.clear()
            self._regimes[key] = regime
        return regime

    def _modes_csr_pack(self) -> tuple:
        """CSR adjacency + typed scalars for the mode kernel."""
        pack = self._modes_csr
        if pack is None:
            plan = self.plan
            n = len(plan.reserves)

            def csr(adj: Dict[int, List[int]]
                    ) -> Tuple[np.ndarray, np.ndarray]:
                ptr = np.zeros(n + 1, dtype=np.int64)
                idx: List[int] = []
                for i in range(n):
                    entries = adj.get(i, ())
                    ptr[i + 1] = ptr[i] + len(entries)
                    idx.extend(entries)
                return ptr, np.asarray(idx, dtype=np.int64)

            pack = (np.asarray(plan.finite_cap, dtype=np.int64),
                    np.asarray(plan.src, dtype=np.int64),
                    np.asarray(plan.snk, dtype=np.int64),
                    *csr(self.const_into), *csr(self.const_from),
                    *csr(self.prop_into), *csr(self.prop_from))
            self._modes_csr = pack
        return pack

    def _derive_modes(self, lvl: np.ndarray, lam: float, ltol: float
                      ) -> Optional[Tuple[np.ndarray, np.ndarray,
                                          np.ndarray, np.ndarray, tuple]]:
        """Classify every reserve into its regime mode, or None.

        The common case — debt marks, FULL capacity pins, no hover,
        no empty-pin fixpoint — runs through the compiled kernel
        (:func:`repro.core.segkernel.derive_modes`; numpy fallback
        when numba is absent), which fills the mode and effective-rate
        arrays bit-identically to :meth:`_derive_modes_full` and
        punts back to it for every richer regime.
        """
        plan = self.plan
        finite_cap, src64, snk64, ci_ptr, ci_idx, cf_ptr, cf_idx, \
            pi_ptr, pi_idx, pf_ptr, pf_idx = self._modes_csr_pack()
        n = len(plan.reserves)
        m = len(plan.taps)
        mode = np.empty(n, dtype=np.int8)
        eff = np.empty(m)
        status = segkernel.derive_modes(
            lvl, float(lam), float(ltol), SAT_RTOL, plan.rate,
            plan.const_mask, plan.capacity, src64, snk64, finite_cap,
            plan.decay_mask, bool(plan.any_decayable),
            int(plan.root_index), ci_ptr, ci_idx, cf_ptr, cf_idx,
            pi_ptr, pi_idx, pf_ptr, pf_idx, mode, eff)
        if status == 0:
            return mode, eff, np.zeros(m), np.zeros(n), ()
        return self._derive_modes_full(lvl, lam, ltol)

    def _derive_modes_full(self, lvl: np.ndarray, lam: float,
                           ltol: float
                           ) -> Optional[Tuple[np.ndarray, np.ndarray,
                                               np.ndarray, np.ndarray,
                                               tuple]]:
        """Classify every reserve into its regime mode, or None.

        Modes: NORMAL (full linear row), DEBT (level below zero —
        outflows and decay off, inflow repays), EMPTY (pinned at zero,
        inflow passed through to its constant drains in creation
        order), FULL (pinned at capacity, inflow rejected at the taps
        — the energy stays in the sources), HOVER (pinned at the cap
        while draining — outflows run at full rate served from the
        inflow, and the deposit taps accept only what the steady
        per-tick cycle's headroom admits).

        Returns ``(mode, eff, hov, pin_loss, fwd)``: ``eff`` is the
        per-tap effective constant rate under the modes (pass-through
        and hover-acceptance distributions folded in), ``hov`` the
        constant effective rate of each proportional drain leaving a
        hovering reserve (``rate * pinned level``), ``pin_loss`` the
        per-reserve constant decay loss of a pinned-at-cap row, and
        ``fwd`` the forwarded pass-through entries ``(tap, cpart,
        sources, weights, tol)`` — the marginal drain of an empty
        reserve fed by live proportional taps, carrying the affine
        remainder ``cpart + Σ wⱼ·Lⱼ(t)`` into its sink.  None marks
        the residual shapes with no supported rewrite; the caller
        refuses the span.
        """
        plan = self.plan
        n = len(plan.reserves)
        m = len(plan.taps)
        src = plan.src
        snk = plan.snk
        rate = plan.rate
        const = plan.const_mask
        cap = plan.capacity
        root = plan.root_index
        boundary = 4.0 * ltol
        mode = np.full(n, _NORMAL, dtype=np.int8)
        mode[lvl < 0.0] = _DEBT  # dust was clamped by the caller
        hov = np.zeros(m)
        pin_loss = np.zeros(n)
        hover_rows: List[int] = []

        const_into = self.const_into
        const_from = self.const_from
        prop_into = self.prop_into
        prop_from = self.prop_from

        # -- capacity pins: at the cap with live inflow --
        for i in plan.finite_cap:
            i = int(i)
            if mode[i] != _NORMAL:
                continue
            band = max(1e-9, 1e-11 * cap[i])
            if lvl[i] < cap[i] - 2.0 * band:
                continue
            c_in_rate = sum(rate[j] for j in const_into.get(i, ())
                            if mode[int(src[j])] != _DEBT)
            live_prop_in = any(mode[int(src[j])] == _NORMAL
                               for j in prop_into.get(i, ()))
            decay_in = (i == root and lam > 0.0 and plan.any_decayable)
            if c_in_rate <= 0.0 and not live_prop_in and not decay_in:
                continue  # nothing arrives: normal dynamics are exact
            drains = bool(const_from.get(i)) or bool(prop_from.get(i))
            decays = lam > 0.0 and bool(plan.decay_mask[i])
            if not drains and not decays:
                mode[i] = _FULL
                continue
            # Draining (or decaying) at the cap.  Constant inflow that
            # sustains the outflow pins the level — hover; otherwise
            # the level descends and normal dynamics are exact (the
            # descent-safe exclusion in _build_regime keeps the cap
            # monitor from re-firing inside the band).
            if live_prop_in:
                # Time-varying inflow into a binding capacity has no
                # constant rewrite; per-tick execution handles it.
                return None
            out_rate = sum(rate[j] for j in const_from.get(i, ()))
            out_rate += sum(rate[j] for j in prop_from.get(i, ())) * lvl[i]
            if decays:
                out_rate += lam * lvl[i]
            if c_in_rate >= out_rate * (1.0 - SAT_RTOL):
                mode[i] = _HOVER
                hover_rows.append(i)
                if decays:
                    pin_loss[i] = lam * lvl[i]

        # -- effective constant rates under the pins --
        eff = np.where(const, rate, 0.0)
        for j in range(m):
            if not const[j]:
                continue
            if mode[int(src[j])] == _DEBT or mode[int(snk[j])] == _FULL:
                eff[j] = 0.0

        # -- hover acceptance: the steady per-tick cycle --
        # At the pinned level every tick repeats the same pattern:
        # drains (and decay, at the very end of the tick) open
        # headroom, deposits consume it greedily in creation order,
        # and whatever survives the cycle is the carry the next tick
        # starts from.  The steady carry solves accepted(carry) ==
        # produced; accepted is monotone in the carry, so bisect.
        for i in hover_rows:
            taps_i = sorted(set(list(const_from.get(i, ()))
                                + list(prop_from.get(i, ()))
                                + list(const_into.get(i, ()))))
            for j in prop_from.get(i, ()):
                if mode[int(snk[j])] != _FULL:
                    hov[j] = rate[j] * lvl[i]
            produced = (sum(eff[j] for j in const_from.get(i, ()))
                        + sum(hov[j] for j in prop_from.get(i, ()))
                        + pin_loss[i])

            def _accepted(carry: float, i: int = i,
                          taps_i: List[int] = taps_i) -> float:
                h = carry
                took = 0.0
                for j in taps_i:
                    if int(src[j]) == i:
                        h += eff[j] if const[j] else hov[j]
                    elif eff[j] > 0.0:
                        a = min(eff[j], h)
                        took += a
                        h -= a
                return took

            hi_c = produced + sum(eff[j] for j in const_into.get(i, ()))
            lo_c = 0.0
            if _accepted(hi_c) < produced * (1.0 - SAT_RTOL):
                return None  # deposits cannot sustain the hover
            for _ in range(60):
                mid = 0.5 * (lo_c + hi_c)
                if _accepted(mid) >= produced:
                    hi_c = mid
                else:
                    lo_c = mid
            h = hi_c
            for j in taps_i:
                if int(src[j]) == i:
                    h += eff[j] if const[j] else hov[j]
                elif eff[j] > 0.0:
                    a = min(eff[j], h)
                    eff[j] = a
                    h -= a

        # -- empty pins: fixpoint over the pass-through distribution --
        # A reserve at zero whose constant drains outrun its inflow
        # sits pinned: each tick deposits arrive first (creation
        # order) and the drains clamp to them.  Effective drain rates
        # only shrink as upstream reserves pin, so the EMPTY set grows
        # monotonically and the loop settles within n passes.  Live
        # proportional inflow makes the pass-through time-varying: the
        # fully-fed prefix of drains still runs at nominal rate, and
        # one *marginal* drain carries the affine remainder (a ``fwd``
        # entry; its saturation monitor ends the segment if the
        # allocation pattern would change).
        fwd_map: Dict[int, tuple] = {}
        candidates = [i for i in range(n)
                      if i != root and mode[i] == _NORMAL
                      and lvl[i] <= boundary and const_from.get(i)]
        for _ in range(n + 2):
            changed = False
            for i in candidates:
                if mode[i] != _NORMAL and mode[i] != _EMPTY:
                    continue
                drains = [j for j in const_from.get(i, ())
                          if mode[int(snk[j])] != _FULL]
                out_rate = sum(rate[j] for j in drains)
                if out_rate <= 0.0:
                    continue
                c_in = sum(eff[j] for j in const_into.get(i, ()))
                c_in += sum(hov[j] for j in prop_into.get(i, ())
                            if mode[int(src[j])] == _HOVER)
                live_prop = [j for j in prop_into.get(i, ())
                             if mode[int(src[j])] == _NORMAL]
                p_in = sum(rate[j] * max(0.0, lvl[int(src[j])])
                           for j in live_prop)
                if c_in + p_in >= out_rate - 1e-15:
                    if mode[i] == _EMPTY:
                        mode[i] = _NORMAL
                        changed = True
                    if fwd_map.pop(i, None) is not None:
                        changed = True
                    for j in drains:
                        if eff[j] != rate[j]:
                            eff[j] = rate[j]
                            changed = True
                    continue
                if mode[i] != _EMPTY:
                    mode[i] = _EMPTY
                    changed = True
                if not live_prop:
                    if fwd_map.pop(i, None) is not None:
                        changed = True
                    remainder = c_in
                    for j in drains:
                        e = min(remainder, rate[j])
                        if eff[j] != e:
                            eff[j] = e
                            remainder -= e
                            changed = True
                        else:
                            remainder -= e
                    continue
                # Forwarded pass-through: prefix at nominal rate, one
                # marginal drain carries ``cpart + Σ w·L_src(t)``.
                if any(rate[j] > 0.0 for j in prop_from.get(i, ())):
                    # A proportional drain leaving the pinned row flows
                    # O(tick) in the reference loop (each tick's deposit
                    # lands before the drain reads the level), which no
                    # tick-size-independent closed form reproduces at
                    # figure tolerance.  Residual refusal.
                    return None
                i0 = c_in + p_in
                r_prev = 0.0
                marginal = -1
                for j in drains:
                    if marginal < 0 and r_prev + rate[j] <= i0:
                        if eff[j] != rate[j]:
                            eff[j] = rate[j]
                            changed = True
                        r_prev += rate[j]
                    else:
                        if marginal < 0:
                            marginal = j
                        if eff[j] != 0.0:
                            eff[j] = 0.0
                            changed = True
                srcs = tuple(int(src[j]) for j in live_prop)
                wts = tuple(float(rate[j]) for j in live_prop)
                tol = (SAT_RTOL * max(1.0, rate[marginal])
                       + 4.0 * ltol * sum(wts))
                entry = (int(marginal), float(c_in - r_prev), srcs,
                         wts, float(tol))
                if fwd_map.get(i) != entry:
                    fwd_map[i] = entry
                    changed = True
            if not changed:
                break
        else:
            return None  # pass-through cycle did not settle
        if mode[root] != _NORMAL:
            return None  # a non-normal battery has no rewrite

        # -- post-validation of the level-dependent pins --
        for j, cpart, srcs, wts, tol in fwd_map.values():
            if mode[int(snk[j])] != _NORMAL:
                return None  # forwarded-into-pinned cascade
            if any(mode[s] != _NORMAL for s in srcs):
                return None  # settled modes invalidated the forwarding
        for i in hover_rows:
            for j in const_into.get(i, ()):
                if eff[j] <= 0.0:
                    continue
                s = int(src[j])
                if mode[s] != _NORMAL or lvl[s] <= boundary:
                    return None  # acceptance split needs a firm source
            for j in (list(const_from.get(i, ()))
                      + list(prop_from.get(i, ()))):
                if mode[int(snk[j])] == _HOVER:
                    return None  # hover-to-hover adjacency
        return mode, eff, hov, pin_loss, tuple(
            sorted(fwd_map.values()))

    def _build_regime(self, mode: np.ndarray, eff: np.ndarray,
                      hov: np.ndarray, pin_loss: np.ndarray,
                      fwd: tuple, lam: float) -> _SegmentRegime:
        """Materialize the linear system and monitors for one regime."""
        plan = self.plan
        n = len(plan.reserves)
        m = len(plan.taps)
        src = plan.src
        snk = plan.snk
        rate = plan.rate
        const = plan.const_mask
        root = plan.root_index
        normal = mode == _NORMAL
        active_row = normal | (mode == _DEBT)

        # Proportional taps: a *live* tap (normal source, accepting
        # sink) drains its source; it also feeds its sink's row unless
        # the sink is pinned empty — then the energy passes through
        # the pin and re-enters via the forwarded entries below.
        prop_live = np.zeros(m, dtype=bool)
        prop_coupled = np.zeros(m, dtype=bool)
        for j in range(m):
            if const[j]:
                continue
            s_mode = mode[int(src[j])]
            k_mode = mode[int(snk[j])]
            if s_mode == _NORMAL and k_mode != _FULL:
                prop_live[j] = True
                if k_mode != _EMPTY:
                    prop_coupled[j] = True

        a = np.zeros((n, n))
        for j in np.flatnonzero(prop_live):
            s, f = int(src[j]), rate[j]
            a[s, s] -= f
            if prop_coupled[j]:
                a[int(snk[j]), s] += f
        decay_rows = np.array([], dtype=np.intp)
        if lam > 0.0 and plan.any_decayable:
            decay_rows = np.flatnonzero(normal & plan.decay_mask)
            if decay_rows.size:
                a[decay_rows, decay_rows] -= lam
                a[root, decay_rows] += lam
        b = np.zeros(n)
        in_eff = np.zeros(n)
        out_eff = np.zeros(n)
        for j in range(m):
            if not const[j] or eff[j] <= 0.0:
                continue
            s, k = int(src[j]), int(snk[j])
            out_eff[s] += eff[j]
            in_eff[k] += eff[j]
            if active_row[s]:
                b[s] -= eff[j]
            if active_row[k]:
                b[k] += eff[j]
        # Hover drains are constants at full rate (served from the
        # pinned reserve's inflow); the pinned decay loss routes to
        # the root like any other reclaim.
        hov_idx = np.flatnonzero(hov > 0.0)
        for j in hov_idx:
            k = int(snk[j])
            in_eff[k] += hov[j]
            if active_row[k]:
                b[k] += hov[j]
        pin_rows = np.flatnonzero(pin_loss > 0.0)
        if pin_rows.size:
            b[root] += float(pin_loss[pin_rows].sum())
        # Forwarded pass-through: the marginal drain's affine flow
        # enters its (normal) sink's row; its nominal rate is the
        # sink's sound inflow upper bound for the cap certificate.
        fwd_entries = []
        sat_ptr = [0]
        sat_src: List[int] = []
        sat_wts: List[float] = []
        sat_c: List[float] = []
        sat_lo: List[float] = []
        sat_hi: List[float] = []
        sat_tol: List[float] = []
        for j, cpart, srcs, wts, tol in fwd:
            k = int(snk[j])
            b[k] += cpart
            for s, w in zip(srcs, wts):
                a[k, s] += w
            in_eff[k] += rate[j]
            fwd_entries.append((int(j), float(cpart),
                               np.array(srcs, dtype=np.intp),
                               np.array(wts)))
            sat_src.extend(srcs)
            sat_wts.extend(wts)
            sat_ptr.append(len(sat_src))
            sat_c.append(float(cpart))
            sat_lo.append(0.0)
            sat_hi.append(float(rate[j]))
            sat_tol.append(float(tol))
        if sat_c:
            sat = (np.array(sat_ptr, dtype=np.int64),
                   np.array(sat_src, dtype=np.int64),
                   np.array(sat_wts), np.array(sat_c),
                   np.array(sat_lo), np.array(sat_hi),
                   np.array(sat_tol))
        else:
            sat = segkernel.EMPTY_SAT

        prop_in = np.zeros(n, dtype=bool)
        for j in np.flatnonzero(prop_coupled):
            prop_in[int(snk[j])] = True
        time_varying_in = prop_in.copy()
        for j, cpart, srcs, wts in fwd_entries:
            time_varying_in[int(snk[j])] = True
        if decay_rows.size:
            time_varying_in[root] = True
        clamp_rows = np.flatnonzero(normal & (out_eff > 0.0))
        has_in = (in_eff > 0.0) | prop_in
        if decay_rows.size:
            has_in[root] = True  # decay reclaim deposits into the root
        cap_mask = np.zeros(n, dtype=bool)
        cap_mask[plan.finite_cap] = True
        cap_rows = []
        cap_limits = []
        f_row = -np.diag(a).copy()
        for i in np.flatnonzero(normal & cap_mask & has_in):
            i = int(i)
            limit = plan.capacity[i] - max(1e-9, 1e-11 * plan.capacity[i])
            # Descent-safe exclusion: with purely constant inflow and
            # ``b <= f * limit`` the trajectory can never rise past
            # the limit from below (at the limit ``L' <= 0``), so the
            # monitor stays silent — this is what lets a reserve *at*
            # its cap with net outflow descend through the band
            # instead of refusing on an instant re-fire.
            if not time_varying_in[i] and b[i] <= f_row[i] * limit:
                continue
            cap_rows.append(i)
            cap_limits.append(limit)
        cap_rows = np.array(cap_rows, dtype=np.intp)
        cap_limits = np.array(cap_limits)
        debt_rows = np.flatnonzero((mode == _DEBT)
                                   & ((b > 0.0) | prop_in))
        debt_slope = b[debt_rows]
        debt_linear = ~prop_in[debt_rows]
        # Certificate inputs (see _SegmentRegime.certify): per-row net
        # linear decay rate, constant-inflow edges for the safe-source
        # credit iteration, and the proportional edges of the cap
        # upper bound.  Hover drains join the credit edges — their
        # pinned source is always safe and their flow is constant.
        const_idx = np.flatnonzero(const & (eff > 0.0))
        prop_idx = np.flatnonzero(prop_live)
        cp_idx = np.concatenate([const_idx, hov_idx])
        cin_eff = np.concatenate([eff[const_idx], hov[hov_idx]])
        # Root is assumed never to run dry (the same assumption every
        # replay path makes); pinned rows pass through constants; rows
        # without constant drains have nothing to clamp.
        always_safe = ~normal | (out_eff <= 0.0)
        always_safe[root] = True
        return _SegmentRegime(
            mode=mode, eff=eff,
            const_idx=const_idx,
            prop_idx=prop_idx,
            decay_rows=decay_rows,
            system=_SegmentPropagator(a, b),
            clamp_rows=clamp_rows, cap_rows=cap_rows,
            cap_limits=cap_limits, debt_rows=debt_rows,
            debt_slope=debt_slope, debt_linear=debt_linear,
            lam=lam, root=root, out_eff=out_eff, in_eff=in_eff,
            f_row=f_row, always_safe=always_safe,
            cin_snk=snk[cp_idx], cin_src=src[cp_idx],
            cin_eff=cin_eff,
            psrc=src[prop_idx][prop_coupled[prop_idx]],
            psnk=snk[prop_idx][prop_coupled[prop_idx]],
            prate=rate[prop_idx][prop_coupled[prop_idx]],
            hov_idx=hov_idx, hov_rate=hov[hov_idx],
            pin_rows=pin_rows, pin_rates=pin_loss[pin_rows],
            fwd=tuple(fwd_entries), sat=sat,
            has_monitors=bool(clamp_rows.size or cap_rows.size
                              or debt_rows.size or sat[3].size))

    def _integrate_segment(self, regime: _SegmentRegime, lvl: np.ndarray,
                           t: float, lam: float) -> Optional[Tuple]:
        """One segment's exact flows; staged, mutates nothing."""
        plan = self.plan
        n = len(plan.reserves)
        integ = np.maximum(regime.system.propagate(lvl, t)[1], 0.0)
        moved = np.zeros(len(plan.taps))
        if regime.const_idx.size:
            moved[regime.const_idx] = regime.eff[regime.const_idx] * t
        if regime.prop_idx.size:
            psrc = plan.src[regime.prop_idx]
            moved[regime.prop_idx] = plan.rate[regime.prop_idx] * integ[psrc]
        if regime.hov_idx.size:
            moved[regime.hov_idx] = regime.hov_rate * t
        for j, cpart, fsrc, fwts in regime.fwd:
            moved[j] = cpart * t + float(fwts @ integ[fsrc])
        lost = np.zeros(n)
        reclaimed = 0.0
        if lam > 0.0 and regime.decay_rows.size:
            lost[regime.decay_rows] = lam * integ[regime.decay_rows]
        if regime.pin_rows.size:
            lost[regime.pin_rows] = regime.pin_rates * t
        if lost.any():
            reclaimed = float(lost.sum())
        end = (lvl
               + np.bincount(plan.snk, weights=moved, minlength=n)
               - np.bincount(plan.src, weights=moved, minlength=n)
               - lost)
        end[plan.root_index] += reclaimed
        neg = np.minimum(end, 0.0)
        neg[regime.mode == _DEBT] = 0.0  # still-repaying rows stay negative
        if float(neg.sum()) < -NEGATIVE_LEVEL_SLACK:
            return None  # the located switch should preclude this
        return end, moved, lost, reclaimed

    # -- batched entry points (cohort fleets) -----------------------------------------

    def batch_clamp_ok(self, lvl: np.ndarray, span: float,
                       f: np.ndarray, linear: np.ndarray) -> np.ndarray:
        """Per-row :meth:`_clamp_safe_rows` over stacked levels."""
        return self._clamp_safe_rows(lvl, span, f, linear)

    # -- shared commit ---------------------------------------------------------------

    def _commit(self, end: np.ndarray, moved: np.ndarray,
                lost: np.ndarray, reclaimed: float) -> float:
        plan = self.plan
        n = len(plan.reserves)
        in_sum = np.bincount(plan.snk, weights=moved, minlength=n)
        out_sum = np.bincount(plan.src, weights=moved, minlength=n)
        for reserve, lv, o, i_, ls in zip(plan.reserves, end.tolist(),
                                          out_sum.tolist(), in_sum.tolist(),
                                          lost.tolist()):
            reserve._level = lv
            if o:
                reserve.total_transferred_out += o
            if i_:
                reserve.total_transferred_in += i_
            if ls:
                reserve.total_decayed += ls
        if reclaimed:
            plan.graph.root.total_deposited += reclaimed
            plan.graph.decay_policy.total_reclaimed += reclaimed
        if plan.owns_slots:
            plan._tap_flow_acc += moved
        else:
            # Span-cache plans never own the taps' accumulator slots
            # (the tick plan does); fold flows straight into the taps.
            for j in np.flatnonzero(moved):
                tap = plan.taps[j]
                tap.total_flowed = tap.total_flowed + moved[j]
        return float(moved.sum())


# ---------------------------------------------------------------------------
# cohort-batched span execution (fleets of structurally identical graphs)
# ---------------------------------------------------------------------------


def _flat_indices(plan: "FlowPlan", d: int
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(flat_src, flat_snk, row_base)`` for a ``d``-device stack.

    Cached on the lead plan (plans die with their topology epoch, so
    the cache cannot go stale); rebuilding these index arrays per
    span was a measurable share of small-cohort call overhead.
    """
    cache = getattr(plan, "_span_flat", None)
    if cache is not None and cache[0] == d:
        return cache[1], cache[2], cache[3]
    n = len(plan.reserves)
    row_base = (np.arange(d) * n)[:, None]
    flat_src = (row_base + plan.src).ravel()
    flat_snk = (row_base + plan.snk).ravel()
    plan._span_flat = (d, flat_src, flat_snk, row_base)
    return flat_src, flat_snk, row_base


def _commit_rows(tiers: List[SpanTier], ok: np.ndarray, end: np.ndarray,
                 moved: np.ndarray, lost: np.ndarray,
                 reclaimed: np.ndarray, in_sum: np.ndarray,
                 out_sum: np.ndarray,
                 results: List[Optional[float]]) -> None:
    """Commit a stacked solve device by device (bulk conversions).

    The bookkeeping is exactly :meth:`SpanTier._commit` per row; the
    whole-stack ``tolist`` conversions replace thousands of per-device
    numpy round-trips — at fleet scale the conversion overhead was a
    visible fraction of the solve.
    """
    end_l = end.tolist()
    in_l = in_sum.tolist()
    out_l = out_sum.tolist()
    lost_l = lost.tolist()
    moved_totals = moved.sum(axis=1).tolist()
    for i, tier in enumerate(tiers):
        if not ok[i]:
            continue
        plan = tier.plan
        for reserve, lv, o, i_, ls in zip(plan.reserves, end_l[i],
                                          out_l[i], in_l[i], lost_l[i]):
            reserve._level = lv
            if o:
                reserve.total_transferred_out += o
            if i_:
                reserve.total_transferred_in += i_
            if ls:
                reserve.total_decayed += ls
        rec = float(reclaimed[i])
        if rec:
            plan.graph.root.total_deposited += rec
            plan.graph.decay_policy.total_reclaimed += rec
        row = moved[i]
        if plan.owns_slots:
            plan._tap_flow_acc += row
        else:
            # Span-cache plans never own the taps' accumulator slots
            # (the tick plan does); fold flows straight into the taps.
            for j in np.flatnonzero(row):
                tap = plan.taps[j]
                tap.total_flowed = tap.total_flowed + row[j]
        results[i] = moved_totals[i]


def execute_span_batch(tiers: List[SpanTier],
                       span) -> List[Optional[float]]:
    """Solve one event-free span for a whole cohort in one stacked call.

    ``tiers`` belong to plans that share a
    :attr:`~repro.core.flowplan.FlowPlan.signature` and whose graphs
    run the same decay constant (the fleet batcher groups by both), so
    the continuous dynamics ``L' = A·L + b`` are literally the same
    system over different initial conditions.  ``span`` is either one
    shared horizon (the lockstep scheduler) or a ``(n_devices,)``
    vector of **per-device** horizons (the independent scheduler's
    event-time buckets): devices at different clocks still share one
    eigendecomposition and one stacked switch-location scan, because
    every propagation formula is elementwise in ``t`` — only the
    dense Padé fallback keys a propagator per span value and solves
    per-span sub-stacks.  A vector of equal spans is bit-identical to
    the scalar call.  Levels stack into one ``(n_devices,
    n_reserves)`` array:

    * the **diagonal** tier runs PR 1's scalar closed form elementwise
      across the stack — bit-identical per device to the per-device
      solve, since every operation is elementwise or a per-row
      bincount in the same order;
    * the **coupled** tier reuses a *single* eigendecomposition (or
      Padé propagator) from the lead tier's cached
      :class:`CoupledSystem` across the cohort's stacked ``L0`` — one
      factorization and a couple of matrix-matrix products instead of
      ``n_devices`` separate solves.  Levels commit by per-device mass
      balance, so conservation stays exact regardless of how the
      stacked linear algebra rounded.

    Switching devices (mid-span clamp, capacity pressure, debt entry)
    are no longer demoted wholesale: they collect into a **batched
    segment chain** (:func:`_batch_segmented`) that runs the scalar
    segmented engine's pipeline over the whole switching sub-cohort at
    once, with per-device segment clocks.  Only genuinely unsupported
    shapes come back ``None`` — nothing of those devices mutated — and
    the caller falls back to the scalar path (which may itself refuse
    into ticking), exactly as before.
    """
    lead = tiers[0]
    plan = lead.plan
    d = len(tiers)
    n = len(plan.reserves)
    policy = plan.graph.decay_policy
    lam = policy.lam if policy.enabled else 0.0
    spans = np.broadcast_to(np.asarray(span, dtype=float), (d,))
    spans_c = spans[:, None]
    lvl = np.empty((d, n))
    for i, tier in enumerate(tiers):
        lvl[i] = tier.plan._gather_levels()
    results: List[Optional[float]] = [None] * d
    seg = np.any(lvl < 0.0, axis=1)  # debt entry: a regime, not a refusal
    ok = ~seg
    f = lead.prop_out + (lam if lam > 0.0 else 0.0) * plan.decay_mask
    linear = f > 0.0
    varying_in = lead.prop_sink_mask.copy()
    if lam > 0.0 and plan.any_decayable:
        varying_in[plan.root_index] = True
    coupled = bool(np.any(linear & varying_in))
    if not coupled:
        # A capacity that can bind has no single-regime closed form;
        # this is a topology property, so every device runs the
        # segment chain (which certifies or locates the binding).
        if plan.finite_cap.size:
            cap_idx = plan.finite_cap
            gets_inflow = (lead.const_in[cap_idx] > 0.0) | varying_in[cap_idx]
            if np.any(gets_inflow):
                seg |= ok
                ok[:] = False
        if ok.any():
            clamp_ok = lead.batch_clamp_ok(lvl, spans, f, linear)
            seg |= ok & ~clamp_ok
            ok &= clamp_ok
        if ok.any():
            _batch_diagonal(tiers, spans, lam, lvl, f, linear, ok, results)
        if seg.any():
            _batch_segmented(tiers, spans, lam, lvl,
                             np.flatnonzero(seg), results)
        return results

    # -- coupled cohort --------------------------------------------------------
    if plan.finite_cap.size and ok.any():
        cap_idx = plan.finite_cap
        mass = np.maximum(lvl, 0.0).sum(axis=1)
        psrc = plan.src[plan.prop_taps]
        psnk = plan.snk[plan.prop_taps]
        prate = plan.rate[plan.prop_taps]
        best = np.repeat(mass[:, None], n, axis=1)
        row_base = _flat_indices(plan, d)[2]
        for _ in range(6):
            inflow = np.broadcast_to(lead.const_in, (d, n)).copy()
            if prate.size:
                flat = (row_base + psnk).ravel()
                inflow += np.bincount(
                    flat, weights=(prate * best[:, psrc]).ravel(),
                    minlength=d * n).reshape(d, n)
            if lam > 0.0 and plan.any_decayable:
                inflow[:, plan.root_index] += lam * best[
                    :, plan.decay_mask].sum(axis=1)
            best = np.minimum(best, lvl + inflow * spans_c)
        cap_ok = ~np.any(best[:, cap_idx] > plan.capacity[cap_idx] - 1e-12,
                         axis=1)
        seg |= ok & ~cap_ok
        ok &= cap_ok
    if ok.any():
        clamp_ok = lead.batch_clamp_ok(lvl, spans, f, linear)
        seg |= ok & ~clamp_ok
        ok &= clamp_ok
    if not ok.any():
        if seg.any():
            _batch_segmented(tiers, spans, lam, lvl,
                             np.flatnonzero(seg), results)
        return results

    system = lead._coupled.get(lam)
    if system is None:
        system = CoupledSystem(lead, lam)
        if len(lead._coupled) > 4:  # decay toggles are rare
            lead._coupled.clear()
        lead._coupled[lam] = system
    if system.eig is not None:
        w, v, vinv = system.eig
        c0 = lvl @ vinv.T            # (d, n) in the eigenbasis
        cb = vinv @ system.b
        z = spans_c * w              # (d, n): per-row horizons
        _, p1, p2 = _phi12(z)
        integ = ((spans_c * (p1 * c0)
                  + (spans_c * spans_c) * (p2 * cb)) @ v.T).real
    else:
        # The dense path has no elementwise-in-t form: one Padé
        # propagator serves one span value, so heterogeneous-horizon
        # stacks solve per span value (cohort buckets rarely carry
        # more than a handful).
        state = np.concatenate(
            [lvl, np.ones((d, 1)), np.zeros((d, n))], axis=1)
        integ = np.empty((d, n))
        for s_val in np.unique(spans):
            s_val = float(s_val)
            propagator = system._dense_cache.get(s_val)
            if propagator is None:
                propagator = _expm(_augmented(system.a, system.b) * s_val)
                if len(system._dense_cache) > 32:
                    system._dense_cache.clear()
                system._dense_cache[s_val] = propagator
            rows = spans == s_val
            integ[rows] = (state[rows] @ propagator.T)[:, n + 1:]
    integ = np.maximum(integ, 0.0)

    m = len(plan.taps)
    moved = np.zeros((d, m))
    if plan.const_taps.size:
        moved[:, plan.const_taps] = plan.rate[plan.const_taps] * spans_c
    if plan.prop_taps.size:
        psrc = plan.src[plan.prop_taps]
        moved[:, plan.prop_taps] = plan.rate[plan.prop_taps] * integ[:, psrc]
    lost = np.zeros((d, n))
    reclaimed = np.zeros(d)
    if lam > 0.0 and plan.any_decayable:
        lost = np.where(plan.decay_mask, lam * integ, 0.0)
        reclaimed = lost.sum(axis=1)
    flat_src, flat_snk, _ = _flat_indices(plan, d)
    in_sum = np.bincount(flat_snk, weights=moved.ravel(),
                         minlength=d * n).reshape(d, n)
    out_sum = np.bincount(flat_src, weights=moved.ravel(),
                          minlength=d * n).reshape(d, n)
    end = lvl + in_sum - out_sum - lost
    end[:, plan.root_index] += reclaimed
    neg = np.minimum(end, 0.0)
    neg_rows = neg.sum(axis=1)
    neg_bad = neg_rows < -NEGATIVE_LEVEL_SLACK
    seg |= ok & neg_bad
    ok &= ~neg_bad
    dusty = neg.any(axis=1) & ok
    if dusty.any():
        # Float dust on near-empty reserves: clamp to zero and let the
        # root absorb the difference so the books still balance.
        end[dusty] -= neg[dusty]
        end[dusty, plan.root_index] += neg_rows[dusty]
    for i, tier in enumerate(tiers):
        if ok[i]:
            tier.coupled_solves += 1
    _commit_rows(tiers, ok, end, moved, lost, reclaimed, in_sum, out_sum,
                 results)
    if seg.any():
        _batch_segmented(tiers, spans, lam, lvl, np.flatnonzero(seg),
                         results)
    return results


def _batch_diagonal(tiers: List[SpanTier], span, lam: float,
                    lvl: np.ndarray, f: np.ndarray, linear: np.ndarray,
                    ok: np.ndarray, results: List[Optional[float]]) -> None:
    """The diagonal fast tier across stacked levels (elementwise).

    ``span`` is a shared scalar or per-row ``(d,)`` horizons — the
    closed form is elementwise in both the levels and the span, so
    heterogeneous horizons ride the identical expressions.
    """
    lead = tiers[0]
    plan = lead.plan
    d, n = lvl.shape
    spans_c = np.broadcast_to(np.asarray(span, dtype=float), (d,))[:, None]
    decay_f = np.exp(-spans_c * f)  # == 1 exactly where F == 0
    net_const = lead.const_in - lead.const_out
    steady = np.divide(net_const, f, out=np.zeros(n), where=linear)
    end = np.where(linear, steady + (lvl - steady) * decay_f,
                   lvl + net_const * spans_c)
    drain = np.where(linear, lvl - end + net_const * spans_c, 0.0)
    drain = np.maximum(drain, 0.0)

    m = len(plan.taps)
    moved = np.zeros((d, m))
    if plan.const_taps.size:
        moved[:, plan.const_taps] = plan.rate[plan.const_taps] * spans_c
    if plan.prop_taps.size:
        psrc = plan.src[plan.prop_taps]
        share = np.divide(plan.rate[plan.prop_taps], f[psrc],
                          out=np.zeros(plan.prop_taps.size),
                          where=f[psrc] > 0)
        moved[:, plan.prop_taps] = drain[:, psrc] * share
        flat = (_flat_indices(plan, d)[2]
                + plan.snk[plan.prop_taps]).ravel()
        end += np.bincount(flat, weights=moved[:, plan.prop_taps].ravel(),
                           minlength=d * n).reshape(d, n)
    lost = np.zeros((d, n))
    reclaimed = np.zeros(d)
    if lam > 0.0 and plan.any_decayable:
        lost = np.where(linear & plan.decay_mask,
                        drain * np.divide(lam, f, out=np.zeros(n),
                                          where=linear), 0.0)
        reclaimed = lost.sum(axis=1)
        end[:, plan.root_index] += reclaimed
    flat_src, flat_snk, _ = _flat_indices(plan, d)
    in_sum = np.bincount(flat_snk, weights=moved.ravel(),
                         minlength=d * n).reshape(d, n)
    out_sum = np.bincount(flat_src, weights=moved.ravel(),
                          minlength=d * n).reshape(d, n)
    for i, tier in enumerate(tiers):
        if ok[i]:
            tier.diagonal_solves += 1
    _commit_rows(tiers, ok, end, moved, lost, reclaimed, in_sum, out_sum,
                 results)


def _batch_segmented(tiers: List[SpanTier], span, lam: float,
                     lvl: np.ndarray, idx: np.ndarray,
                     results: List[Optional[float]]) -> None:
    """Stacked segment-chain solve for a cohort's switching devices.

    ``span`` is a shared scalar or a full-stack ``(n_devices,)``
    vector of per-device horizons (indexed by ``idx`` like ``lvl``):
    every device already carries its own remaining-span clock through
    the chain, so heterogeneous starting horizons only change each
    clock's starting value and the per-device segment-resolution
    thresholds derived from it.

    Runs the scalar segmented loop's exact pipeline — dust absorption,
    regime derivation, the certify-first fast path, sampled switch
    location with bisection, staged mass-balance integration — over a
    ``(devices, reserves)`` stack.  Devices switch at different
    instants, so each carries its own remaining-span clock and segment
    count; every round groups the still-active devices by their
    *derived regime* (cached on the lead tier, so one shared
    eigendecomposition serves every device in the same regime) and
    advances each group to its members' next switches in one stacked
    sample/bisect/integrate pass.

    Per-device drop-out covers only the genuinely unsupported shapes —
    an underivable regime, a dense (Padé) regime propagator, a failed
    no-switch certificate, a sub-resolution segment, or a chain past
    :data:`MAX_SEGMENTS`.  A dropped device's ``results`` entry stays
    ``None`` with nothing mutated: the caller's scalar path (which may
    itself refuse into ticking) takes over, identical to before.

    Stacked arithmetic reorders a handful of float operations relative
    to the scalar engine (matrix-matrix instead of matrix-vector
    products), so batched results agree with the scalar segmented
    reference to documented ulp tolerance rather than bit-identically;
    the parity suite pins that contract.
    """
    lead = tiers[0]
    plan = lead.plan
    n = len(plan.reserves)
    m = len(plan.taps)
    root = plan.root_index
    g = idx.size
    work = lvl[idx].copy()
    scale = np.maximum(1.0, np.abs(work).max(axis=1))
    ltol = 1e-11 * scale
    acc_moved = np.zeros((g, m))
    acc_lost = np.zeros((g, n))
    acc_rec = np.zeros(g)
    rem0 = np.broadcast_to(np.asarray(span, dtype=float),
                           (lvl.shape[0],))[idx]
    remaining = rem0.copy()
    segments = np.zeros(g, dtype=np.int64)
    alive = np.ones(g, dtype=bool)
    min_seg = np.maximum(1e-12, 1e-10 * rem0)
    tail = 1e-9 * rem0
    locate_wall = 0.0
    integrate_wall = 0.0

    while True:
        active = alive & (remaining > tail)
        if not active.any():
            break
        over = active & (segments >= MAX_SEGMENTS)
        if over.any():
            alive[over] = False
            active &= ~over
            if not active.any():
                break
        dust = active[:, None] & (work < 0.0) & (work >= -4.0
                                                 * ltol[:, None])
        if dust.any():
            work[:, root] += np.where(dust, work, 0.0).sum(axis=1)
            work[dust] = 0.0
        groups: Dict[int, Tuple[_SegmentRegime, List[int]]] = {}
        for i in np.flatnonzero(active):
            regime = lead._regime_for(work[i], lam, float(ltol[i]))
            if regime is None or regime.system.eig is None:
                alive[i] = False
                continue
            groups.setdefault(id(regime), (regime, []))[1].append(i)
        for regime, row_list in groups.values():
            rows = np.asarray(row_list, dtype=np.intp)
            gr = rows.size
            lvls = work[rows]
            lt = ltol[rows]
            rem = remaining[rows]
            n_sat = regime.sat[3].shape[0]
            eig = regime.system.eig
            b_sys = regime.system.b
            t0 = perf_counter()
            seg_t = rem.copy()
            located = np.zeros(gr, dtype=bool)
            crossed = np.zeros((gr, n), dtype=bool)
            crossed_sat = np.zeros((gr, n_sat), dtype=bool)
            drop = np.zeros(gr, dtype=bool)
            fast = np.zeros(gr, dtype=bool)
            # Certify-first fast path (same applicability rule as the
            # scalar loop: no debt rows, or all of them linear).
            if not regime.debt_rows.size or bool(regime.debt_linear.all()):
                t_cand = rem.copy()
                for r_i in range(regime.debt_rows.shape[0]):
                    slope = float(regime.debt_slope[r_i])
                    if slope > 0.0:
                        row = int(regime.debt_rows[r_i])
                        np.minimum(t_cand, (-lt - lvls[:, row]) / slope,
                                   out=t_cand)
                early = t_cand < rem
                if early.any():
                    for r_i in range(regime.debt_rows.shape[0]):
                        slope = float(regime.debt_slope[r_i])
                        if slope <= 0.0:
                            continue
                        row = int(regime.debt_rows[r_i])
                        t_star = (-lt - lvls[:, row]) / slope
                        crossed[:, row] = (early
                                           & (t_star <= t_cand
                                              * (1.0 + 1e-12)))
                fast = ((t_cand >= min_seg[rows])
                        & regime.certify_batch(lvls, t_cand, lt,
                                               crossed, crossed_sat))
                seg_t = np.where(fast, t_cand, seg_t)
                located = fast & early
                crossed &= fast[:, None]
            srs = np.flatnonzero(~fast)
            if srs.size:
                if regime.has_monitors:
                    ts = np.linspace(rem[srs] / EVENT_SAMPLES, rem[srs],
                                     EVENT_SAMPLES, axis=1)
                    states = _eig_states_batch(eig, b_sys, lvls[srs], ts)
                    first = segkernel.first_hits(
                        states, regime.clamp_rows, regime.cap_rows,
                        regime.cap_limits, regime.debt_rows, lt[srs],
                        *regime.sat)
                    hit = first >= 0
                    if hit.any():
                        hrows = srs[hit]
                        f_i = first[hit]
                        pos = np.flatnonzero(hit)
                        lo_h = np.where(f_i == 0, 0.0,
                                        ts[pos, np.maximum(f_i - 1, 0)])
                        hi_h = ts[pos, f_i]
                        floor = np.maximum(1e-12 * rem[hrows], 1e-15)
                        sub_lvls = lvls[hrows]
                        sub_lt = lt[hrows]
                        for _ in range(64):
                            open_ = (hi_h - lo_h) > floor
                            if not open_.any():
                                break
                            mid = 0.5 * (lo_h + hi_h)
                            st = _eig_state_at_batch(eig, b_sys,
                                                     sub_lvls, mid)
                            viol = segkernel.violated_at(
                                st, regime.clamp_rows, regime.cap_rows,
                                regime.cap_limits, regime.debt_rows,
                                sub_lt, *regime.sat)
                            hi_h = np.where(open_ & viol, mid, hi_h)
                            lo_h = np.where(open_ & ~viol, mid, lo_h)
                        st_hi = _eig_state_at_batch(eig, b_sys,
                                                    sub_lvls, hi_h)
                        c_rows, c_sat = regime.crossing_marks_batch(
                            st_hi, sub_lt)
                        seg_t[hrows] = lo_h
                        located[hrows] = True
                        crossed[hrows] = c_rows
                        if n_sat:
                            crossed_sat[hrows] = c_sat
                drop[srs] = seg_t[srs] < min_seg[rows[srs]]
                cert = regime.certify_batch(lvls[srs], seg_t[srs],
                                            lt[srs], crossed[srs],
                                            crossed_sat[srs])
                drop[srs] |= ~cert
            locate_wall += perf_counter() - t0
            t0 = perf_counter()
            keep = ~drop
            if keep.any():
                k_pos = np.flatnonzero(keep)
                t_seg = seg_t[k_pos]
                integ = np.maximum(
                    _eig_propagate_batch(eig, b_sys, lvls[k_pos], t_seg),
                    0.0)
                gk = k_pos.size
                seg_moved = np.zeros((gk, m))
                if regime.const_idx.size:
                    ci = regime.const_idx
                    seg_moved[:, ci] = regime.eff[ci] * t_seg[:, None]
                if regime.prop_idx.size:
                    pi = regime.prop_idx
                    seg_moved[:, pi] = (plan.rate[pi]
                                        * integ[:, plan.src[pi]])
                if regime.hov_idx.size:
                    seg_moved[:, regime.hov_idx] = (regime.hov_rate
                                                    * t_seg[:, None])
                for j, cpart, fsrc, fwts in regime.fwd:
                    seg_moved[:, j] = cpart * t_seg + integ[:, fsrc] @ fwts
                seg_lost = np.zeros((gk, n))
                if lam > 0.0 and regime.decay_rows.size:
                    dr = regime.decay_rows
                    seg_lost[:, dr] = lam * integ[:, dr]
                if regime.pin_rows.size:
                    seg_lost[:, regime.pin_rows] = (regime.pin_rates
                                                    * t_seg[:, None])
                seg_rec = seg_lost.sum(axis=1)
                rb = (np.arange(gk) * n)[:, None]
                in_sum = np.bincount(
                    (rb + plan.snk).ravel(), weights=seg_moved.ravel(),
                    minlength=gk * n).reshape(gk, n)
                out_sum = np.bincount(
                    (rb + plan.src).ravel(), weights=seg_moved.ravel(),
                    minlength=gk * n).reshape(gk, n)
                end = lvls[k_pos] + in_sum - out_sum - seg_lost
                end[:, root] += seg_rec
                neg = np.minimum(end, 0.0)
                neg[:, regime.mode == _DEBT] = 0.0
                bad = neg.sum(axis=1) < -NEGATIVE_LEVEL_SLACK
                if bad.any():
                    drop[k_pos[bad]] = True
                    good = ~bad
                    k_pos = k_pos[good]
                    t_seg = t_seg[good]
                    end = end[good]
                    seg_moved = seg_moved[good]
                    seg_lost = seg_lost[good]
                    seg_rec = seg_rec[good]
                krows = rows[k_pos]
                work[krows] = end
                acc_moved[krows] += seg_moved
                acc_lost[krows] += seg_lost
                acc_rec[krows] += seg_rec
                segments[krows] += 1
                remaining[krows] = np.where(
                    located[k_pos], remaining[krows] - t_seg, 0.0)
            integrate_wall += perf_counter() - t0
            alive[rows[drop]] = False

    solved = alive & (segments > 0) & ~(remaining > tail)
    if not solved.any():
        return
    dust = solved[:, None] & (work < 0.0) & (work >= -4.0 * ltol[:, None])
    if dust.any():
        work[:, root] += np.where(dust, work, 0.0).sum(axis=1)
        work[dust] = 0.0
    rb = (np.arange(g) * n)[:, None]
    in_sum = np.bincount((rb + plan.snk).ravel(),
                         weights=acc_moved.ravel(),
                         minlength=g * n).reshape(g, n)
    out_sum = np.bincount((rb + plan.src).ravel(),
                          weights=acc_moved.ravel(),
                          minlength=g * n).reshape(g, n)
    sub_tiers = [tiers[i] for i in idx]
    sub_results: List[Optional[float]] = [None] * g
    _commit_rows(sub_tiers, solved, work, acc_moved, acc_lost, acc_rec,
                 in_sum, out_sum, sub_results)
    n_solved = int(solved.sum())
    loc_share = locate_wall / n_solved
    int_share = integrate_wall / n_solved
    for p in np.flatnonzero(solved):
        tier = sub_tiers[p]
        tier.segmented_solves += 1
        graph = tier.plan.graph
        graph.span_segments += int(segments[p])
        graph.span_switches += int(segments[p]) - 1
        graph.span_locate_wall_s += loc_share
        graph.span_integrate_wall_s += int_share
        results[int(idx[p])] = sub_results[p]
