"""The resource consumption graph (paper §3.4).

"Reserves and taps form a directed graph of resource consumption
rights.  The root of the graph is a reserve representing the system
battery; all other reserves are a subdivision of this root reserve."

:class:`ResourceGraph` owns the root reserve, registers every reserve
and tap, executes the periodic batch flow, applies the global decay,
and can audit conservation: no operation in the graph creates or
destroys resource — energy leaves only by being *consumed* (tracked
per reserve) and enters only by explicit external deposit (battery
charging).

The module also implements the paper's sketched-but-not-adopted
anti-hoarding primitives (§5.2.2): :meth:`ResourceGraph.clone_reserve`
(``reserve_clone()``) and :meth:`ResourceGraph.checked_transfer`, which
forbids moving resources from a fast-draining reserve to a
slower-draining one without the privilege to remove the difference.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import EnergyError, HoardingError, NoSuchObjectError, TapError
from ..kernel.labels import Label, NO_PRIVILEGES, PrivilegeSet, can_modify
from .decay import DecayPolicy
from .flowplan import FlowPlan, VECTOR_MIN_OBJECTS
from .reserve import ENERGY, Reserve
from .tap import Tap, TapType


class ResourceGraph:
    """Registry and engine for one resource kind's reserves and taps."""

    def __init__(
        self,
        root_level: float,
        kind: str = ENERGY,
        root_capacity: Optional[float] = None,
        root_name: str = "battery",
        decay: Optional[DecayPolicy] = None,
    ) -> None:
        self.kind = kind
        self.root = Reserve(
            level=root_level,
            kind=kind,
            capacity=root_capacity,
            decay_exempt=True,
            name=root_name,
        )
        self._reserves: List[Reserve] = [self.root]
        self._taps: List[Tap] = []
        #: O(1) registry membership (identity-based, like ``in`` was).
        self._reserve_ids = {id(self.root)}
        self._tap_ids: set = set()
        self.decay_policy = decay if decay is not None else DecayPolicy()
        self._initial_energy = float(root_level)
        self._external_deposits = 0.0
        #: Consumption history carried by reserves that were deleted.
        self._retired_consumed = 0.0
        #: Levels dropped by un-reclaimed reserve deletion.
        self._leaked = 0.0
        #: Simulation time of the last step (informational).
        self.time = 0.0
        # -- compiled-plan epoch state (see core/flowplan.py) --
        #: Bumped on every topology mutation; FlowPlans and the cached
        #: live views are valid only while this stands still.
        self._generation = 0
        self._live_reserves: Optional[List[Reserve]] = None
        self._live_taps: Optional[List[Tap]] = None
        self._plan: Optional[FlowPlan] = None
        #: held-tap id frozenset -> span plan compiled with those taps
        #: excluded (validity re-checked against the generation), so a
        #: frozen-tap macro-step does not recompile anything per call.
        self._span_plans: Dict[frozenset, FlowPlan] = {}
        #: Registry entries deleted through graph APIs but not yet
        #: compacted (so sweep_dead can still count *external* deaths).
        self._deferred_removals = 0
        #: External deaths compacted (e.g. by a plan rebuild) that no
        #: sweep_dead call has reported yet.
        self._external_removed_pending = 0
        #: Telemetry: how many step() calls ran vectorized vs fell back.
        self.vector_steps = 0
        self.fallback_steps = 0
        #: Telemetry: segments executed by the switching span engine
        #: (spans the single-regime solvers would have refused), and
        #: the regime switches located inside them (``segments - 1``
        #: per switching span).  See :mod:`repro.core.spansolver`.
        self.span_segments = 0
        self.span_switches = 0
        #: Telemetry: wall seconds the segmented engine spent locating
        #: switch instants (event scan + certificates) vs integrating
        #: committed segments — flushed only on successful solves, so
        #: the split always describes work that actually landed.
        self.span_locate_wall_s = 0.0
        self.span_integrate_wall_s = 0.0
        self.root._graph_hook = self._bump

    # -- plan/epoch machinery ----------------------------------------------------

    @property
    def generation(self) -> int:
        """Topology epoch counter (compiled plans pin one value)."""
        return self._generation

    def _bump(self) -> None:
        """Invalidate the compiled plan and cached live views."""
        self._generation += 1
        self._live_reserves = None
        self._live_taps = None

    def _compact(self) -> int:
        """Bulk-drop dead registry entries; returns external deaths.

        Taps whose endpoints died are killed here too (the reference
        path lazily disabled them one flow() at a time).  Reserves are
        retired with their consumption history preserved.  Entries that
        died through graph APIs (``delete_tap``/``delete_reserve``)
        were already counted and do not show up in the return value.
        """
        removed = 0
        keep_taps = [t for t in self._taps
                     if t.alive and t.source.alive and t.sink.alive]
        if len(keep_taps) != len(self._taps):
            for tap in self._taps:
                if not (tap.alive and tap.source.alive and tap.sink.alive):
                    if tap.alive:
                        tap.mark_dead()
                    removed += 1
            self._taps = keep_taps
            self._tap_ids = {id(t) for t in keep_taps}
        keep_reserves = [r for r in self._reserves
                         if r.alive or r is self.root]
        if len(keep_reserves) != len(self._reserves):
            for reserve in self._reserves:
                if not reserve.alive and reserve is not self.root:
                    self._retired_consumed += reserve.total_consumed
                    self._leaked += reserve.leaked_at_death
                    removed += 1
            self._reserves = keep_reserves
            self._reserve_ids = {id(r) for r in keep_reserves}
        external = max(0, removed - self._deferred_removals)
        self._deferred_removals = 0
        self._external_removed_pending += external
        if removed:
            self._bump()
        return external

    def _current_plan(self) -> FlowPlan:
        """The compiled plan for the present topology epoch."""
        plan = self._plan
        if plan is None or plan.generation != self._generation:
            if plan is not None:
                plan.flush_stats()
            self._compact()
            plan = FlowPlan(self)
            self._plan = plan
        return plan

    def _span_plan_for(self, held: List[Tap]) -> FlowPlan:
        """A span plan with ``held`` taps excluded, cached per epoch.

        Keyed by (generation, held-tap set): as long as the topology
        stands still, every macro-step with the same frozen taps — the
        netd pooled-wait pattern fires one per horizon — reuses one
        compiled plan.  (The old implementation toggled
        ``tap.enabled``, which bumped the generation twice per
        macro-step and forced two full recompiles per horizon.)
        """
        key = frozenset(id(t) for t in held)
        plan = self._span_plans.get(key)
        if plan is None or plan.generation != self._generation:
            self._compact()
            if len(self._span_plans) > 8:  # held-set churn safety valve
                self._span_plans.clear()
            plan = FlowPlan(self, exclude=key, claim_slots=False)
            self._span_plans[key] = plan
        return plan

    # -- registration -----------------------------------------------------------

    def create_reserve(self, level: float = 0.0, name: str = "",
                       label: Optional[Label] = None,
                       capacity: Optional[float] = None,
                       decay_exempt: bool = False,
                       source: Optional[Reserve] = None) -> Reserve:
        """Create and register a reserve.

        If ``source`` is given, the initial ``level`` is *moved out of*
        ``source`` (subdivision); otherwise a non-zero level would
        create energy from nothing, so it is only allowed for non-root
        bookkeeping kinds when ``source is None`` and ``level == 0``.
        """
        if level < 0.0:
            # Checked on both paths: previously a negative level with a
            # source was silently ignored by the level > 0 guard below.
            raise EnergyError(
                f"initial reserve level must be non-negative, got {level:.6g}")
        if source is None and level != 0.0:
            raise EnergyError(
                "a reserve's initial level must be subdivided from an "
                "existing reserve (pass source=...)")
        reserve = Reserve(level=0.0, kind=self.kind, capacity=capacity,
                          decay_exempt=decay_exempt, label=label, name=name)
        if source is not None and level > 0.0:
            source.transfer_to(reserve, level)
            if abs(reserve.level - level) > 1e-12:
                raise EnergyError(
                    f"source {source.name!r} could not fund {level:.6g}")
        reserve._graph_hook = self._bump
        self._reserves.append(reserve)
        self._reserve_ids.add(id(reserve))
        self._bump()
        return reserve

    def adopt_reserve(self, reserve: Reserve) -> Reserve:
        """Register an externally-constructed reserve (kind must match)."""
        if reserve.kind != self.kind:
            raise EnergyError(
                f"graph holds {self.kind}, reserve holds {reserve.kind}")
        if id(reserve) not in self._reserve_ids:
            # Adopted levels count as external input to the graph.
            self._external_deposits += max(0.0, reserve.level)
            reserve._graph_hook = self._bump
            self._reserves.append(reserve)
            self._reserve_ids.add(id(reserve))
            self._bump()
        return reserve

    def create_tap(self, source: Reserve, sink: Reserve, rate: float,
                   tap_type: TapType = TapType.CONST,
                   name: str = "", label: Optional[Label] = None,
                   privileges: PrivilegeSet = NO_PRIVILEGES) -> Tap:
        """Create and register a tap between two registered reserves."""
        for endpoint in (source, sink):
            if id(endpoint) not in self._reserve_ids:
                raise TapError(
                    f"reserve {endpoint.name!r} is not part of this graph")
        tap = Tap(source, sink, rate=rate, tap_type=tap_type,
                  label=label, privileges=privileges, name=name)
        tap._graph_hook = self._bump
        self._taps.append(tap)
        self._tap_ids.add(id(tap))
        self._bump()
        return tap

    def delete_tap(self, tap: Tap) -> None:
        """Remove a tap (revocation; §5.2's per-page tap GC).

        O(1): the entry is marked dead and dropped from the backing
        list in bulk at the next compaction (plan rebuild or sweep).
        """
        registered = id(tap) in self._tap_ids
        tap.mark_dead()
        if registered:
            self._tap_ids.discard(id(tap))
            self._deferred_removals += 1
            self._bump()

    def delete_reserve(self, reserve: Reserve,
                       reclaim_to: Optional[Reserve] = None) -> None:
        """Delete a reserve, its taps, and optionally reclaim its level."""
        if reserve is self.root:
            raise EnergyError("cannot delete the root reserve")
        if reclaim_to is not None and reserve.alive and reserve.level > 0:
            reserve.transfer_to(reclaim_to, reserve.level)
        for tap in [t for t in self._taps
                    if t.source is reserve or t.sink is reserve]:
            if id(tap) in self._tap_ids:
                self.delete_tap(tap)
        registered = id(reserve) in self._reserve_ids
        reserve.mark_dead()
        if registered:
            self._reserve_ids.discard(id(reserve))
            self._deferred_removals += 1
            self._bump()

    # -- queries -----------------------------------------------------------------

    @property
    def reserves(self) -> List[Reserve]:
        """Live registered reserves (cached view — do not mutate)."""
        cache = self._live_reserves
        if cache is None:
            cache = self._live_reserves = [r for r in self._reserves
                                           if r.alive]
        return cache

    @property
    def taps(self) -> List[Tap]:
        """Live registered taps (cached view — do not mutate)."""
        cache = self._live_taps
        if cache is None:
            cache = self._live_taps = [t for t in self._taps if t.alive]
        return cache

    def taps_from(self, reserve: Reserve) -> List[Tap]:
        """Taps whose source is ``reserve``."""
        return [t for t in self.taps if t.source is reserve]

    def taps_into(self, reserve: Reserve) -> List[Tap]:
        """Taps whose sink is ``reserve``."""
        return [t for t in self.taps if t.sink is reserve]

    def backward_taps_of(self, reserve: Reserve) -> List[Tap]:
        """Proportional taps draining ``reserve`` (the §5.2.1 kind)."""
        return [t for t in self.taps_from(reserve)
                if t.tap_type is TapType.PROPORTIONAL]

    def drain_rate_of(self, reserve: Reserve) -> float:
        """Sum of proportional drain fractions applied to ``reserve``.

        Includes the implicit global decay unless the reserve is
        exempt.  This is the quantity the §5.2.2 transfer rule
        compares.
        """
        rate = sum(t.rate for t in self.backward_taps_of(reserve)
                   if t.enabled)
        if not reserve.decay_exempt and self.decay_policy.enabled:
            rate += self.decay_policy.lam
        return rate

    def total_level(self) -> float:
        """Sum of all live reserve levels (may include debt)."""
        return sum(r.level for r in self.reserves)

    def total_consumed(self) -> float:
        """Total resource consumed (left the graph as work) so far."""
        return (sum(r.total_consumed for r in self._reserves)
                + self._retired_consumed)

    def total_leaked(self) -> float:
        """Resource dropped by un-reclaimed reserve deletion."""
        return self._leaked + sum(r.leaked_at_death for r in self._reserves)

    def conservation_error(self) -> float:
        """initial + external - (levels + consumed + leaked); ~0 always."""
        return (self._initial_energy + self._external_deposits
                - self.total_level() - self.total_consumed()
                - self.total_leaked())

    def sweep_dead(self) -> int:
        """Drop registry entries whose objects died externally.

        Containers mark objects dead when a subtree is deleted; this
        sweep keeps the graph registry consistent afterwards.  Returns
        the number of externally-died entries removed since the last
        sweep — including any a plan rebuild already compacted —
        while entries deleted through ``delete_tap``/``delete_reserve``
        are never counted.  One O(n) bulk pass, not per-entry
        ``list.remove``.
        """
        self._compact()
        count = self._external_removed_pending
        self._external_removed_pending = 0
        return count

    # -- external input ------------------------------------------------------------

    def external_deposit(self, amount: float,
                         into: Optional[Reserve] = None) -> float:
        """Model battery charging: add resource from outside the graph."""
        target = into if into is not None else self.root
        accepted = target.deposit(amount)
        self._external_deposits += accepted
        return accepted

    # -- stepping -------------------------------------------------------------------

    def step(self, dt: float) -> float:
        """One batch round: flow every tap, then apply global decay.

        Returns the total amount moved by taps this round.  Taps fire
        in creation order, mirroring the kernel's batch execution
        (§3.3); within one tick ordering effects are bounded by
        ``rate * dt``.

        Executes the compiled :class:`FlowPlan` (vectorized array
        math) whenever its exactness checks hold, and falls back to
        the per-object :meth:`step_reference` path otherwise — both
        produce the same result up to float associativity.
        """
        if dt < 0:
            raise EnergyError("dt must be non-negative")
        plan = self._plan
        if plan is None or plan.generation != self._generation:
            # Below the vectorization cutoff the per-object loop wins;
            # don't even pay for a compile (advance_span still compiles
            # on demand).  Registry counts over-estimate live objects,
            # which only errs toward compiling.
            if (len(self._reserves) + len(self._taps)
                    < VECTOR_MIN_OBJECTS):
                if self._deferred_removals:
                    self._compact()  # keep small registries tidy
                return self.step_reference(dt)
            plan = self._current_plan()
        if plan.small:
            # Not counted as a fallback (nothing was attempted).
            return self.step_reference(dt)
        moved = plan.execute_tick(dt)
        if moved is None:
            self.fallback_steps += 1
            return self.step_reference(dt)
        self.vector_steps += 1
        self.time += dt
        return moved

    def step_reference(self, dt: float) -> float:
        """The original per-object batch round (reference semantics).

        Kept as the differential-testing oracle and as the fallback
        for ticks the compiled plan cannot prove it executes exactly
        (e.g. a multi-drain reserve clamping mid-round).
        """
        if dt < 0:
            raise EnergyError("dt must be non-negative")
        moved = 0.0
        for tap in self._taps:
            if tap.alive:
                moved += tap.flow(dt)
        self.decay_policy.apply(self._reserves, self.root, dt)
        self.time += dt
        return moved

    def advance_span(self, span: float,
                     frozen_taps: Iterable[Tap] = ()) -> Optional[float]:
        """Closed-form flow/decay over an event-free span (fast-forward).

        Returns the total tap flow over ``span`` seconds, or None when
        no closed form is sound for the current *state* — the caller
        should tick instead.  Mutates nothing on a None return.
        Neither proportional chains nor the piecewise-linear switches
        (a constant tap clamping mid-span, a capacity binding, a debt
        level crossing zero) are refusals any more: coupled topologies
        go through the matrix-exponential solver and switching states
        through the segmented engine (:mod:`repro.core.spansolver`),
        with the located segments counted in :attr:`span_segments` /
        :attr:`span_switches`.  Only the residual shapes the segment
        engine cannot rewrite (documented there) still refuse.

        ``frozen_taps`` are held out of the integration entirely: an
        event source that integrates its own taps in closed form (netd
        pooled-wait accrual) passes them here so the span is not
        double-counted.  The caller owns replaying their flow.  Held
        sets hit a per-epoch plan cache, so repeated macro-steps with
        the same frozen taps never recompile.
        """
        if span < 0:
            raise EnergyError("span must be non-negative")
        if span == 0.0:
            return 0.0
        moved = self.span_plan_handle(frozen_taps).execute_span(span)
        if moved is None:
            return None
        self.time += span
        return moved

    def span_plan_handle(self, frozen_taps: Iterable[Tap] = ()) -> FlowPlan:
        """The compiled plan a span over ``frozen_taps`` executes on.

        Fleet schedulers use this to fetch cohort members' plans (and
        their topology signatures) without executing anything: devices
        whose handles share a signature can stack their span solves
        into one batched call.  A span executed directly on the handle
        must be followed by :meth:`note_span` on success — that is
        exactly what :meth:`advance_span` does for the scalar path.
        """
        held = [t for t in frozen_taps if t.alive and t.enabled]
        if not held:
            return self._current_plan()
        return self._span_plan_for(held)

    def note_span(self, span: float) -> None:
        """Book a span executed externally (batched cohort solve)."""
        self.time += span

    # -- §5.2.2: the fundamental anti-hoarding alternative ---------------------------

    def clone_reserve(self, reserve: Reserve,
                      privileges: PrivilegeSet = NO_PRIVILEGES,
                      name: str = "") -> Reserve:
        """``reserve_clone()``: new empty reserve inheriting drains.

        Duplicates onto the clone every backward proportional tap of
        the original that ``privileges`` cannot remove (cannot modify),
        so taxation cannot be dodged by moving resources sideways.
        """
        clone = self.create_reserve(name=name or f"{reserve.name}/clone",
                                    label=reserve.label)
        for tap in self.backward_taps_of(reserve):
            if can_modify(reserve.label, privileges, tap.label):
                continue  # caller could remove this tap anyway
            self.create_tap(clone, tap.sink, tap.rate,
                            TapType.PROPORTIONAL,
                            name=f"{tap.name}/cloned", label=tap.label)
        return clone

    def checked_transfer(self, source: Reserve, sink: Reserve,
                         amount: float,
                         privileges: PrivilegeSet = NO_PRIVILEGES) -> float:
        """Transfer refusing fast->slow drain moves (§5.2.2).

        Allowed iff the sink drains at least as fast as the portion of
        the source's drain the caller is not privileged to remove.
        """
        protected_rate = sum(
            t.rate for t in self.backward_taps_of(source)
            if t.enabled and not can_modify(source.label, privileges, t.label))
        if not source.decay_exempt and self.decay_policy.enabled:
            protected_rate += self.decay_policy.lam
        sink_rate = self.drain_rate_of(sink)
        if sink_rate + 1e-15 < protected_rate:
            raise HoardingError(
                f"transfer {source.name!r} -> {sink.name!r} would slow the "
                f"drain from {protected_rate:.6g}/s to {sink_rate:.6g}/s")
        return source.transfer_to(sink, amount)

    # -- visualisation -----------------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz rendering of the consumption graph (docs/debugging)."""
        lines = ["digraph cinder {", "  rankdir=LR;"]
        for reserve in self.reserves:
            shape = "doubleoctagon" if reserve is self.root else "box"
            lines.append(
                f'  r{reserve.object_id} [shape={shape} '
                f'label="{reserve.name}\\n{reserve.level:.3g}"];')
        for tap in self.taps:
            style = "solid" if tap.tap_type is TapType.CONST else "dashed"
            unit = "u/s" if tap.tap_type is TapType.CONST else "/s"
            lines.append(
                f'  r{tap.source.object_id} -> r{tap.sink.object_id} '
                f'[style={style} label="{tap.rate:.3g}{unit}"];')
        lines.append("}")
        return "\n".join(lines)
