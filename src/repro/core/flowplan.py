"""Compiled flow plans: the resource graph's vectorized execution engine.

The per-object tick path (``Tap.flow`` + ``DecayPolicy.apply``) costs a
handful of Python-level calls and a ``math.exp`` per tap per tick; at
production scale (a full simulated day is 8.64M ticks) that interpreter
overhead dominates everything.  A :class:`FlowPlan` snapshots the live
tap/reserve topology into numpy arrays once per *epoch* — the span
between topology mutations, tracked by the graph's generation counter —
and then executes each tick as a few array operations.

Two execution modes:

* :meth:`execute_tick` — one batch round, *exactly* equivalent to the
  sequential per-object reference path (``ResourceGraph.step_reference``)
  whenever its cheap vectorized validity checks pass, and ``None``
  (caller falls back to the reference path) otherwise.  Exactness is
  obtained by compiling the creation-ordered tap list into *segments*:
  within a segment every tap's amount is a function of segment-start
  levels only, so simultaneous evaluation reproduces sequential
  firing bit-for-bit up to float associativity.
* :meth:`execute_span` — a closed-form macro-step over an arbitrary
  span with no intervening events (the engine's idle fast-forward).
  The span *tier* lives in :mod:`repro.core.spansolver`: a scalar
  per-reserve closed form for diagonal systems, a coupled
  matrix-exponential solver for proportional chains, and a segmented
  engine that carries piecewise-linear regime switches (mid-span
  clamps, binding capacities, debt repayment) across their located
  switch instants — all committing by per-reserve mass balance so
  conservation stays exact.  Returns ``None`` only for the residual
  shapes the segment engine cannot rewrite — the engine then falls
  back to ticking.  The compiled snapshot is the segment engine's
  regime substrate: ``src``/``snk``/``rate``/``const_mask`` order *is*
  creation order, which fixes the pass-through distribution when an
  emptied reserve's drains clamp.

Segmentation rules (compile time, creation order preserved):

* a PROPORTIONAL tap starts a new segment if any earlier tap in the
  current segment touched its source (its amount reads that level);
* a CONST tap starts a new segment only if an earlier tap in the
  segment *deposited into* its source (drains by segment peers are
  covered by the runtime no-clamp check below).

Runtime validity checks (per segment, per tick):

* total requested outflow from each reserve must not exceed its
  positive level at segment start (guarantees no sequential clamp;
  a CONST tap that is the *sole* drain of its source is clamped
  exactly instead and never triggers a fallback);
* inflow into each finite-capacity reserve must fit its headroom.

Per-tap cumulative flow is accumulated in a plan-owned array and only
folded into ``Tap.total_flowed`` when the plan is flushed (topology
change) — reads stay exact because ``total_flowed`` is a property that
adds the live accumulator.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .reserve import Reserve
from .spansolver import SpanTier
from .tap import Tap, TapType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import ResourceGraph

#: Below this many reserves+taps the per-object reference path beats
#: numpy call overhead; execute_tick defers to it (and the graph skips
#: compiling a plan for stepping at all).
VECTOR_MIN_OBJECTS = 40

# segment execution modes
_CONST_ONLY = 0
_PROP_ONLY = 1
_MIXED = 2


class FlowPlan:
    """An immutable compiled snapshot of one graph's flow topology.

    ``exclude`` drops specific taps (by ``id``) from the snapshot —
    the graph uses it to compile span plans with an event source's
    self-integrated taps held out, *without* toggling ``Tap.enabled``
    (which would bump the generation and recompile every other plan).
    Such secondary plans are built with ``claim_slots=False`` so they
    never steal the primary tick plan's per-tap flow accumulators.
    """

    def __init__(self, graph: "ResourceGraph",
                 exclude: frozenset = frozenset(),
                 claim_slots: bool = True) -> None:
        self.graph = graph
        #: Generation the snapshot was taken at; the graph recompiles
        #: when its counter moves past this.
        self.generation = graph.generation
        #: Whether this plan owns the taps' flow-accumulator slots.
        self.owns_slots = claim_slots

        reserves: List[Reserve] = [r for r in graph._reserves if r.alive]
        taps: List[Tap] = [
            t for t in graph._taps
            if t.alive and t.enabled and t.rate > 0.0
            and t.source.alive and t.sink.alive
            and id(t) not in exclude]
        self.reserves = reserves
        self.taps = taps
        n = len(reserves)
        m = len(taps)
        self.small = (n + m) < VECTOR_MIN_OBJECTS
        index: Dict[int, int] = {id(r): i for i, r in enumerate(reserves)}
        self.root_index = index[id(graph.root)]

        self.src = np.fromiter((index[id(t.source)] for t in taps),
                               dtype=np.intp, count=m)
        self.snk = np.fromiter((index[id(t.sink)] for t in taps),
                               dtype=np.intp, count=m)
        self.rate = np.fromiter((t.rate for t in taps), dtype=float, count=m)
        self.const_mask = np.fromiter(
            (t.tap_type is TapType.CONST for t in taps), dtype=bool, count=m)

        self.capacity = np.fromiter(
            (math.inf if r.capacity is None else r.capacity
             for r in reserves), dtype=float, count=n)
        self.finite_cap = np.flatnonzero(np.isfinite(self.capacity))
        #: Reserves subject to the global decay (non-exempt, non-root).
        self.decay_mask = np.fromiter(
            (not r.decay_exempt and r is not graph.root for r in reserves),
            dtype=bool, count=n)
        self.any_decayable = bool(self.decay_mask.any())

        self._build_segments()
        self.prop_taps = np.flatnonzero(~self.const_mask)
        self.const_taps = np.flatnonzero(self.const_mask)
        #: dt -> (const amounts, proportional integration factors).
        self._amount_cache: Dict[float, Tuple[np.ndarray, np.ndarray]] = {}
        #: The span tier (closed-form macro-steps), built on first use.
        self._span_tier: Optional[SpanTier] = None
        #: Lazily computed topology signature (see :attr:`signature`).
        self._signature: Optional[Tuple] = None
        #: Lazily-flushed per-tap cumulative flow (see Tap.total_flowed).
        self._tap_flow_acc = np.zeros(m)
        if claim_slots:
            for j, tap in enumerate(taps):
                tap._flow_slot = (self._tap_flow_acc, j)

    @property
    def signature(self) -> Tuple:
        """A hashable digest of the compiled topology *shape*.

        Two plans with equal signatures describe graphs whose live
        reserves and taps are structurally identical — same counts,
        same creation-ordered wiring, same rates/types, same
        capacities and decay exemptions — so their tick and span
        arithmetic is the same elementwise program over different
        level vectors.  That is exactly the cohort-eligibility test
        the fleet batcher applies (levels are *not* part of the
        signature: they are gathered fresh per call).
        """
        sig = self._signature
        if sig is None:
            sig = self._signature = (
                len(self.reserves), len(self.taps), self.root_index,
                self.src.tobytes(), self.snk.tobytes(),
                self.rate.tobytes(), self.const_mask.tobytes(),
                self.capacity.tobytes(), self.decay_mask.tobytes())
        return sig

    def flush_stats(self) -> None:
        """Fold accumulated per-tap flow back into the tap objects.

        Called by the graph right before this plan is replaced; after
        the flush the taps read their own scalars again.
        """
        acc = self._tap_flow_acc
        for j, tap in enumerate(self.taps):
            if tap._flow_slot is not None and tap._flow_slot[0] is acc:
                tap._total_flowed += acc[j]
                tap._flow_slot = None
        acc[:] = 0.0

    # -- compilation -------------------------------------------------------------

    def _build_segments(self) -> None:
        """Split the creation-ordered tap list into exact-batch segments.

        Only *data-dependent* interactions force a boundary: a
        PROPORTIONAL tap whose source an earlier proportional tap in
        the segment touched (its amount would read a runtime value).
        CONST taps never close a segment — their amounts are
        level-independent, and their effect on a later proportional
        tap's source level inside the same segment is the compile-time
        constant ``net_const_rate * dt``, recorded per tap in
        ``self.corr`` and added before evaluating the exponential.
        This keeps the canonical interleaved pattern (feed tap then
        backward tap, per app) in a single segment.
        """
        m = len(self.taps)
        bounds: List[Tuple[int, int]] = []
        start = 0
        prop_touched: set = set()
        net_delta: Dict[int, float] = {}
        corr = np.zeros(m)
        clamp_ok = np.ones(m, dtype=bool)
        for j in range(m):
            s = int(self.src[j])
            k = int(self.snk[j])
            if not self.const_mask[j] and s in prop_touched:
                bounds.append((start, j))
                start = j
                prop_touched = set()
                net_delta = {}
            corr[j] = net_delta.get(s, 0.0)
            clamp_ok[j] = s not in prop_touched
            if self.const_mask[j]:
                net_delta[s] = net_delta.get(s, 0.0) - self.rate[j]
                net_delta[k] = net_delta.get(k, 0.0) + self.rate[j]
            else:
                prop_touched.add(s)
                prop_touched.add(k)
        if start < m or not bounds:
            bounds.append((start, m))
        # A CONST tap that is its source's only in-segment drain (and
        # whose source no proportional tap touched) may be clamped to
        # the available level exactly — sequential firing would do the
        # same — so an empty dead-end reserve never forces a fallback.
        # Exception: if the tap's endpoints feed any proportional
        # source in the segment, a clamp would falsify that tap's
        # compile-time corr term, so it keeps the unclamped amount and
        # relies on the runtime no-clamp check (fallback on failure).
        clampable = np.zeros(m, dtype=bool)
        segments = []
        for lo, hi in bounds:
            counts: Dict[int, int] = {}
            prop_sources = set()
            for j in range(lo, hi):
                s = int(self.src[j])
                counts[s] = counts.get(s, 0) + 1
                if not self.const_mask[j]:
                    prop_sources.add(s)
            for j in range(lo, hi):
                if (self.const_mask[j] and clamp_ok[j]
                        and counts[int(self.src[j])] == 1
                        and int(self.src[j]) not in prop_sources
                        and int(self.snk[j]) not in prop_sources):
                    clampable[j] = True
            seg_const = self.const_mask[lo:hi]
            mode = (_CONST_ONLY if seg_const.all()
                    else _PROP_ONLY if not seg_const.any() else _MIXED)
            segments.append((lo, hi, mode, bool(clampable[lo:hi].any()),
                             bool(corr[lo:hi].any())))
        self.clampable = clampable
        self.corr = corr
        self.segments = segments

    def _amounts_for(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """(const amounts, prop ``1 - exp(-rate*dt)`` factors) for ``dt``."""
        cached = self._amount_cache.get(dt)
        if cached is None:
            const_amt = np.where(self.const_mask, self.rate * dt, 0.0)
            factors = np.where(self.const_mask, 0.0,
                               -np.expm1(-self.rate * dt))
            cached = (const_amt, factors)
            if len(self._amount_cache) > 32:  # unbounded-dt safety valve
                self._amount_cache.clear()
            self._amount_cache[dt] = cached
        return cached

    # -- level materialisation ------------------------------------------------------

    def _gather_levels(self) -> np.ndarray:
        return np.fromiter((r._level for r in self.reserves), dtype=float,
                           count=len(self.reserves))

    # -- one vectorized tick --------------------------------------------------------

    def execute_tick(self, dt: float) -> Optional[float]:
        """One batch round; returns total moved, or None to fall back.

        Mutates nothing until every segment and the decay pass have
        validated, so a ``None`` return leaves the graph untouched for
        the reference path to re-execute.
        """
        if self.small:
            return None  # numpy overhead loses on tiny graphs (the
            # graph checks .small first and skips the call entirely)
        n = len(self.reserves)
        m = len(self.taps)
        policy = self.graph.decay_policy
        work = self._gather_levels()
        moved = np.zeros(m)
        in_sum = np.zeros(n)
        out_sum = np.zeros(n)
        if m:
            const_amt, factors = self._amounts_for(dt)
            finite_cap = self.finite_cap
            for lo, hi, mode, has_clamp, has_corr in self.segments:
                src = self.src[lo:hi]
                snk = self.snk[lo:hi]
                pos = np.maximum(work, 0.0)
                if mode == _CONST_ONLY and not has_clamp:
                    amt = const_amt[lo:hi]
                else:
                    # Source level as sequential firing would see it:
                    # segment start plus net in-segment constant flow.
                    base = work[src]
                    if has_corr:
                        base = base + self.corr[lo:hi] * dt
                    avail = np.maximum(base, 0.0)
                    if mode == _PROP_ONLY:
                        amt = avail * factors[lo:hi]
                    elif mode == _CONST_ONLY:
                        amt = const_amt[lo:hi]
                    else:
                        amt = np.where(self.const_mask[lo:hi],
                                       const_amt[lo:hi],
                                       avail * factors[lo:hi])
                    if has_clamp:
                        cl = self.clampable[lo:hi]
                        amt = np.where(cl, np.minimum(amt, avail), amt)
                out = np.bincount(src, weights=amt, minlength=n)
                if (out > pos).any():
                    return None
                inn = np.bincount(snk, weights=amt, minlength=n)
                if finite_cap.size:
                    headroom = np.maximum(
                        0.0, self.capacity[finite_cap] - work[finite_cap])
                    if (inn[finite_cap] > headroom).any():
                        return None
                work += inn
                work -= out
                in_sum += inn
                out_sum += out
                moved[lo:hi] = amt

        # -- global decay, closed over this tick --
        fraction = policy.fraction_for(dt)
        reclaimed = 0.0
        lost_list = None
        if fraction > 0.0 and self.any_decayable:
            eligible = self.decay_mask & (work > 0.0)
            if eligible.any():
                lost = np.where(eligible, work * fraction, 0.0)
                reclaimed = float(lost.sum())
                root_i = self.root_index
                if reclaimed > self.capacity[root_i] - work[root_i]:
                    # The reference path clamps deposits reserve by
                    # reserve; model that precisely there instead.
                    return None
                work -= lost
                work[root_i] += reclaimed
                lost_list = lost.tolist()

        # -- commit --
        root = self.graph.root
        if lost_list is None:
            for reserve, lv, o, i_ in zip(self.reserves, work.tolist(),
                                          out_sum.tolist(), in_sum.tolist()):
                reserve._level = lv
                if o:
                    reserve.total_transferred_out += o
                if i_:
                    reserve.total_transferred_in += i_
        else:
            for reserve, lv, o, i_, ls in zip(self.reserves, work.tolist(),
                                              out_sum.tolist(),
                                              in_sum.tolist(), lost_list):
                reserve._level = lv
                if o:
                    reserve.total_transferred_out += o
                if i_:
                    reserve.total_transferred_in += i_
                if ls:
                    reserve.total_decayed += ls
        if fraction > 0.0:
            if reclaimed:
                root.total_deposited += reclaimed
            policy.total_reclaimed += reclaimed
        self._tap_flow_acc += moved
        return float(moved.sum())

    # -- closed-form macro step ------------------------------------------------------

    @property
    def span_tier(self) -> SpanTier:
        """The closed-form span solver over this snapshot (lazy)."""
        tier = self._span_tier
        if tier is None:
            tier = self._span_tier = SpanTier(self)
        return tier

    def execute_span(self, span: float) -> Optional[float]:
        """Integrate flows and decay over ``span`` seconds in one shot.

        Delegates to the span tier (:mod:`repro.core.spansolver`):
        per-reserve scalar closed forms for diagonal systems, the
        coupled matrix-exponential solver for proportional chains, and
        the segmented engine for piecewise-linear regime switches.
        Differs from tick-by-tick integration by O(tick)
        discretisation error — figure-level identical — while
        conservation stays exact by mass balance.  Returns total tap
        flow, or None when no closed form is sound (caller must tick
        instead; a None return mutates nothing).
        """
        return self.span_tier.execute(span)


# ---------------------------------------------------------------------------
# cohort-batched execution (fleets of structurally identical graphs)
# ---------------------------------------------------------------------------


def execute_tick_batch(plans: List[FlowPlan],
                       dt: float) -> List[Optional[float]]:
    """One stacked batch round across a cohort of identical graphs.

    ``plans`` must share a :attr:`FlowPlan.signature` (the caller
    groups by it) and their graphs must apply the same decay fraction
    for ``dt``.  Levels are stacked into one ``(n_devices, n_reserves)``
    array and every segment executes across the whole cohort at once —
    the same elementwise arithmetic :meth:`FlowPlan.execute_tick`
    performs per device, so a batched tick is bit-identical to the
    per-device kernel.  Validity (no-clamp, capacity headroom, decay
    headroom) is checked per device; a failing device is dropped from
    the commit untouched and reported as ``None`` in the result list
    so the caller can run its full per-device step instead.

    Unlike ``graph.step``, this entry point does not defer to the
    per-object reference path on small graphs: batching exists
    precisely because a fleet of small graphs amortizes the numpy
    call overhead a single small graph cannot.
    """
    lead = plans[0]
    d = len(plans)
    n = len(lead.reserves)
    m = len(lead.taps)
    # One flat gather for the whole cohort: same values in the same
    # order as per-plan _gather_levels calls, minus d-1 numpy setups.
    work = np.fromiter(
        (r._level for plan in plans for r in plan.reserves),
        dtype=float, count=d * n).reshape(d, n)
    ok = np.ones(d, dtype=bool)
    moved = np.zeros((d, m))
    in_sum = np.zeros((d, n))
    out_sum = np.zeros((d, n))
    # Per-segment flat scatter indices, cached on the lead plan (plans
    # die with their topology epoch, so the cache cannot go stale).
    flat_cache = getattr(lead, "_tick_flat", None)
    if flat_cache is None or flat_cache[0] != d:
        row_base = (np.arange(d) * n)[:, None]
        flat_cache = (d, [((row_base + lead.src[lo:hi]).ravel(),
                           (row_base + lead.snk[lo:hi]).ravel())
                          for lo, hi, _, _, _ in lead.segments])
        lead._tick_flat = flat_cache
    if m:
        const_amt, factors = lead._amounts_for(dt)
        finite_cap = lead.finite_cap
        for seg_index, (lo, hi, mode, has_clamp,
                        has_corr) in enumerate(lead.segments):
            src = lead.src[lo:hi]
            snk = lead.snk[lo:hi]
            pos = np.maximum(work, 0.0)
            if mode == _CONST_ONLY and not has_clamp:
                amt = np.broadcast_to(const_amt[lo:hi], (d, hi - lo))
            else:
                base = work[:, src]
                if has_corr:
                    base = base + lead.corr[lo:hi] * dt
                avail = np.maximum(base, 0.0)
                if mode == _PROP_ONLY:
                    amt = avail * factors[lo:hi]
                elif mode == _CONST_ONLY:
                    amt = np.broadcast_to(const_amt[lo:hi], (d, hi - lo))
                else:
                    amt = np.where(lead.const_mask[lo:hi],
                                   const_amt[lo:hi],
                                   avail * factors[lo:hi])
                if has_clamp:
                    cl = lead.clampable[lo:hi]
                    amt = np.where(cl, np.minimum(amt, avail), amt)
            flat_src, flat_snk = flat_cache[1][seg_index]
            out = np.bincount(flat_src, weights=amt.ravel(),
                              minlength=d * n).reshape(d, n)
            bad = (out > pos).any(axis=1)
            inn = np.bincount(flat_snk, weights=amt.ravel(),
                              minlength=d * n).reshape(d, n)
            if finite_cap.size:
                headroom = np.maximum(
                    0.0, lead.capacity[finite_cap] - work[:, finite_cap])
                bad |= (inn[:, finite_cap] > headroom).any(axis=1)
            ok &= ~bad
            work += inn
            work -= out
            in_sum += inn
            out_sum += out
            moved[:, lo:hi] = amt

    # -- global decay, closed over this tick (per-device headroom) --
    policy = lead.graph.decay_policy
    fraction = policy.fraction_for(dt)
    reclaimed = np.zeros(d)
    lost = None
    if fraction > 0.0 and lead.any_decayable:
        eligible = lead.decay_mask & (work > 0.0)
        lost = np.where(eligible, work * fraction, 0.0)
        reclaimed = lost.sum(axis=1)
        root_i = lead.root_index
        bad = reclaimed > lead.capacity[root_i] - work[:, root_i]
        ok &= ~bad
        work -= lost
        work[:, root_i] += reclaimed

    # -- per-device commit (identical bookkeeping to execute_tick;
    #    whole-stack tolist conversions amortize the numpy round-trips) --
    results: List[Optional[float]] = [None] * d
    work_l = work.tolist()
    out_l = out_sum.tolist()
    in_l = in_sum.tolist()
    lost_l = lost.tolist() if lost is not None else None
    moved_l = moved.tolist()
    moved_totals = moved.sum(axis=1).tolist()
    for i, plan in enumerate(plans):
        if not ok[i]:
            continue
        root = plan.graph.root
        if lost_l is None:
            for reserve, lv, o, i_ in zip(plan.reserves, work_l[i],
                                          out_l[i], in_l[i]):
                reserve._level = lv
                if o:
                    reserve.total_transferred_out += o
                if i_:
                    reserve.total_transferred_in += i_
        else:
            for reserve, lv, o, i_, ls in zip(plan.reserves, work_l[i],
                                              out_l[i], in_l[i],
                                              lost_l[i]):
                reserve._level = lv
                if o:
                    reserve.total_transferred_out += o
                if i_:
                    reserve.total_transferred_in += i_
                if ls:
                    reserve.total_decayed += ls
        if fraction > 0.0:
            rec = float(reclaimed[i])
            if rec:
                root.total_deposited += rec
            plan.graph.decay_policy.total_reclaimed += rec
        acc = plan._tap_flow_acc
        for j, amount in enumerate(moved_l[i]):
            if amount:
                acc[j] += amount
        graph = plan.graph
        graph.vector_steps += 1
        graph.time += dt
        results[i] = moved_totals[i]
    return results
