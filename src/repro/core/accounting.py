"""Per-principal consumption accounting.

Reserves already track their own totals (paper §3.2); this ledger adds
the cross-cutting view the paper's figures need: *which principal*
consumed *how much*, *on which component*, *when*.  Figure 9 and
Figure 12 are stacked plots of exactly these records, windowed into
per-second power estimates.

HiStar's gate-based IPC makes attribution trivial — the thread that
entered the gate is the principal — so the ledger simply keys on the
thread (or any string principal) handed to :meth:`record`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class ConsumptionRecord:
    """One billed consumption event."""

    time: float
    principal: str
    component: str
    joules: float


class ConsumptionLedger:
    """An append-only log of consumption events with windowed queries."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        #: Callable returning current simulation time; default 0 forever.
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._records: List[ConsumptionRecord] = []
        self._times: List[float] = []
        self._total_by_principal: Dict[str, float] = defaultdict(float)
        self._total_by_component: Dict[str, float] = defaultdict(float)

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Bind the ledger to a simulation clock."""
        self._clock = clock

    # -- recording -----------------------------------------------------------------

    def record(self, principal: str, component: str, joules: float,
               time: Optional[float] = None) -> None:
        """Append one event (time defaults to the bound clock)."""
        when = self._clock() if time is None else time
        if self._times and when < self._times[-1]:
            # Ledger must stay sorted for the window queries; clamp
            # slightly-late records to the log head.
            when = self._times[-1]
        record = ConsumptionRecord(when, principal, component, joules)
        self._records.append(record)
        self._times.append(when)
        self._total_by_principal[principal] += joules
        self._total_by_component[component] += joules

    # -- totals ---------------------------------------------------------------------

    def total(self) -> float:
        """All joules ever recorded."""
        return sum(self._total_by_principal.values())

    def total_for(self, principal: str) -> float:
        """Joules recorded against one principal."""
        return self._total_by_principal.get(principal, 0.0)

    def total_for_component(self, component: str) -> float:
        """Joules recorded against one component."""
        return self._total_by_component.get(component, 0.0)

    def principals(self) -> List[str]:
        """All principals seen, in first-appearance order."""
        seen: List[str] = []
        for record in self._records:
            if record.principal not in seen:
                seen.append(record.principal)
        return seen

    # -- windowed queries -------------------------------------------------------------

    def window(self, start: float, end: float) -> List[ConsumptionRecord]:
        """Records with ``start <= time < end``."""
        lo = bisect_left(self._times, start)
        hi = bisect_left(self._times, end)
        return self._records[lo:hi]

    def energy_in_window(self, principal: str, start: float,
                         end: float) -> float:
        """Joules billed to ``principal`` within [start, end)."""
        return sum(r.joules for r in self.window(start, end)
                   if r.principal == principal)

    def power_series(self, principal: str, t_end: float,
                     bin_s: float = 1.0,
                     component: Optional[str] = None
                     ) -> Tuple[List[float], List[float]]:
        """(times, watts): windowed average power for one principal.

        This is "Cinder's CPU energy accounting estimates" as plotted
        in Figures 9 and 12: energy billed per bin divided by bin
        width.
        """
        times: List[float] = []
        watts: List[float] = []
        start = 0.0
        while start < t_end:
            end = min(start + bin_s, t_end)
            joules = sum(
                r.joules for r in self.window(start, end)
                if r.principal == principal
                and (component is None or r.component == component))
            times.append(start)
            width = end - start
            watts.append(joules / width if width > 0 else 0.0)
            start = end
        return times, watts

    def stacked_power_series(self, principals: Iterable[str], t_end: float,
                             bin_s: float = 1.0
                             ) -> Dict[str, Tuple[List[float], List[float]]]:
        """Power series for several principals (the stacked-plot input)."""
        return {p: self.power_series(p, t_end, bin_s) for p in principals}

    def __len__(self) -> int:
        return len(self._records)
