"""Cinder's contribution: reserves, taps, and the consumption graph.

* :class:`Reserve` — a right to use a quantity of a resource (§3.2).
* :class:`Tap` — a rate limit on flow between reserves (§3.3).
* :class:`ResourceGraph` — the battery-rooted graph they form (§3.4).
* :class:`DecayPolicy` — the global anti-hoarding half-life (§5.2.2).
* :class:`EnergyAwareScheduler` — reserve-gated CPU scheduling (§3.2).
* :class:`ConsumptionLedger` — per-principal accounting (§6 figures).
"""

from .accounting import ConsumptionLedger, ConsumptionRecord
from .decay import DEFAULT_HALF_LIFE_S, DecayPolicy
from .graph import ResourceGraph
from .planner import (LifetimeBudget, PlannedAllocation,
                      income_for_poll_interval, poll_interval_for)
from .policy import (ForegroundBackgroundSlot, RateLimitedChild, SharedChild,
                     foreground_background_slot, rate_limit,
                     shared_rate_limit)
from .reserve import ENERGY, NETWORK_BYTES, SMS_MESSAGES, Reserve
from .scheduler import EnergyAwareScheduler
from .tap import TAP_TYPE_CONST, TAP_TYPE_PROPORTIONAL, Tap, TapType

__all__ = [
    "ConsumptionLedger", "ConsumptionRecord",
    "DEFAULT_HALF_LIFE_S", "DecayPolicy", "ResourceGraph",
    "LifetimeBudget", "PlannedAllocation", "income_for_poll_interval",
    "poll_interval_for",
    "ForegroundBackgroundSlot", "RateLimitedChild", "SharedChild",
    "foreground_background_slot", "rate_limit", "shared_rate_limit",
    "ENERGY", "NETWORK_BYTES", "SMS_MESSAGES", "Reserve",
    "EnergyAwareScheduler",
    "TAP_TYPE_CONST", "TAP_TYPE_PROPORTIONAL", "Tap", "TapType",
]
