"""Shared closed-form pooled-accrual machinery (netd and gpsd).

Both cooperative daemons repeat the same per-tick arithmetic while a
batch of callers waits for a pooled expense (the §5.5.2 radio
power-up, a GPS cold fix): each waiter's feed tap deposits
``rate * tick`` into its reserve, the global decay takes its fraction
of the deposit, and the daemon's pump drains the remainder into the
pool.  When every waiter reserve has the canonical ``powered_reserve``
shape that per-tick sequence is a fixed list of float addends, so the
pool's whole trajectory — and the exact tick the batch becomes
affordable — can be replayed without running the engine.

This module owns the two daemon-independent halves of that story:

* :func:`analyze_pooled_accrual` — validate the regime and compute the
  per-reserve per-tick arithmetic (:class:`PooledAccrual`).  The
  canonical shape is: reserve drained to exactly zero, uncapped, no
  outbound taps, fed by exactly one constant tap whose source is the
  graph root **or a const-only junction reserve** (uncapped,
  decay-exempt, constant taps only) — the chained-feed topologies the
  span solver now integrates.  Anything else returns None and the
  daemon falls back to per-tick execution, which is always correct.
* :func:`replay_pooled_accrual` — advance the pool through the exact
  per-tick float sequence (chunked ``numpy.cumsum`` is sequential,
  hence bit-identical to repeated ``+=``) and move every cumulative
  counter in bulk.

Each daemon keeps its own *crossing scan* — netd's pump has a
two-gate affordability check, gpsd's clamps contributions at the
shortfall — because that is where their pump arithmetic differs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .reserve import Reserve
from .tap import Tap, TapType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import ResourceGraph


@dataclass
class PooledEntry:
    """Per-tick arithmetic for one distinct waiter reserve."""

    reserve: Reserve
    #: The reserve's single constant feed tap (frozen over spans).
    tap: Tap
    #: Per-tick feed deposit (``rate * tick_s``).
    inflow: float
    #: Per-tick decay loss on the deposit.
    lost: float
    #: Per-tick transfer into the pool (``inflow - lost``).
    contribution: float
    #: The first queued operation drawing from this reserve.
    op: Any


@dataclass
class PooledAccrual:
    """One pooled-wait regime's closed-form description."""

    #: One entry per distinct waiter reserve, in queue order.
    entries: List[PooledEntry]
    #: Non-zero pool increments per tick, in contribution order.
    addends: List[float]
    #: ``sum(level per op)`` exactly as a pump computes it (an
    #: op-indexed sum: a shared reserve is counted once per op).
    avail_sum: float
    #: Per-tick decay fraction (0.0 when decay is off).
    fraction: float
    #: (feed-source reserve, its total constant drain rate, its total
    #: constant *inflow* rate), one per distinct source — the
    #: clamp-budget inputs.
    drains: List[Tuple[Reserve, float, float]]

    def frozen_taps(self) -> List[Tap]:
        """The feed taps a daemon integrates itself over a span."""
        return [entry.tap for entry in self.entries]

    def budget_ticks(self, tick_s: float) -> float:
        """Ticks every feed source can fund its constant drains.

        The budget is an exact *net-rate* bound, not the old
        gross-drain haircut: a source drains at its constant outflow
        minus its **root-sourced** constant inflow (inflow from any
        other reserve is ignored — its upstream could clamp; so is
        proportional inflow — both omissions only err safe), after one
        tick of slack covering intra-tick firing order (a drain
        created before its source's feed sees the level a whole
        deposit short).  A root-fed pass-through junction — constant
        inflow covering its constant drains, the canonical chained
        shape — therefore has an *infinite* budget: such feeds keep
        their bit-identical replay contracts with no conservative
        clamp gating at all.  Genuinely depleting sources still bound
        the skip: tick-by-tick execution cannot clamp a frozen feed
        tap earlier than this.
        """
        budget = math.inf
        for source, out_rate, in_rate in self.drains:
            if out_rate <= 0.0:
                continue
            slack = source.level - out_rate * tick_s
            if slack < 0.0:
                return 0.0  # could clamp within the very next tick
            net = out_rate - in_rate
            if net > 0.0:
                budget = min(budget, slack / (net * tick_s))
        return budget

    def analytic_skip_ticks(self, gain: float, pool_level: float,
                            required: float, tick_s: float,
                            window: int) -> Optional[int]:
        """Safe skip distance when the crossing is still far away.

        ``gain`` is the caller's per-tick pool-gain estimate (it may
        over-estimate — landing early is harmless, skipping past the
        crossing is not).  Returns None when the crossing is within
        ``window`` accrual rounds — the caller must run its own exact
        scalar replay of its pump's arithmetic — otherwise a tick
        count a few rounds short of the crossing, clamped so no feed
        source can clamp inside the skip (0 = land on the pending
        tick: a source budget is nearly exhausted).
        """
        estimate = (required - 1e-12 - pool_level) / gain
        if estimate <= window:
            return None
        safe = int(estimate) - 5
        budget = self.budget_ticks(tick_s)
        if budget != math.inf:
            if budget <= 4.0:
                return 0
            safe = min(safe, int(budget - 4.0))
        return max(safe, 1)


def analyze_pooled_accrual(
    graph: "ResourceGraph",
    pool: Reserve,
    ops: List[Any],
    reserve_of: Callable[[Any], Optional[Reserve]],
    tick_s: float,
    drain_to_pool: bool = True,
) -> Optional[PooledAccrual]:
    """Validate a pooled-wait regime; None means tick instead.

    ``ops`` are the queued operations in queue order; ``reserve_of``
    maps one to its caller's active reserve.

    ``drain_to_pool=False`` describes the *individual-gating* regime
    (netd with the radio already active, §5.5.1 semantics): waiters
    accrue in their **own** reserves — nothing moves to the pool until
    an op becomes affordable — so the reserve's starting level is
    arbitrary (no drained-to-zero requirement) and its trajectory is
    the exact per-tick ``+= rate * tick`` chain.  Because the level is
    non-zero, a per-tick decay would make the increments
    level-dependent; the closed form therefore additionally requires
    decay off (or the reserve exempt).  ``entry.contribution`` is 0
    and :attr:`PooledAccrual.addends`/``avail_sum`` stay empty in this
    mode: replay goes through :func:`replay_reserve_accrual`.
    """
    root = graph.root
    if (not pool.alive or pool.capacity is not None
            or not pool.decay_exempt or pool.level < 0.0):
        return None
    if root.capacity is not None:
        return None  # decay reclaim and junction funding assume headroom
    fraction = graph.decay_policy.fraction_for(tick_s)
    # One pass over the live taps: per-reserve wiring and pool isolation.
    inbound: Dict[int, List[Tap]] = {}
    outbound: Dict[int, List[Tap]] = {}
    pool_id = id(pool)
    for tap in graph.taps:
        if not tap.enabled:
            continue
        if id(tap.source) == pool_id or id(tap.sink) == pool_id:
            return None  # something else feeds or drains the pool
        inbound.setdefault(id(tap.sink), []).append(tap)
        outbound.setdefault(id(tap.source), []).append(tap)
    reserves: List[Optional[Reserve]] = []
    waiter_ids = set()
    for op in ops:
        reserve = reserve_of(op)
        if reserve is None:
            return None
        reserves.append(reserve)
        waiter_ids.add(id(reserve))
    entries: List[PooledEntry] = []
    addends: List[float] = []
    seen: Dict[int, float] = {}   # reserve id -> per-tick level
    sources: Dict[int, Tuple[Reserve, float]] = {}
    avail_sum = 0.0
    for op, reserve in zip(ops, reserves):
        key = id(reserve)
        if key in seen:
            # A shared reserve: the pump counts its level once per op
            # in the availability sum, but only the first op drains it.
            avail_sum = avail_sum + max(0.0, seen[key])
            continue
        if (not reserve.alive or reserve is root or reserve is pool
                or reserve.capacity is not None
                or (drain_to_pool and reserve._level != 0.0)):
            return None
        if (not drain_to_pool and fraction > 0.0
                and not reserve.decay_exempt):
            # A non-zero accruing level makes per-tick decay
            # level-dependent; no fixed-addend replay exists.
            return None
        if outbound.get(key):
            return None
        feeds = inbound.get(key, [])
        if len(feeds) != 1:
            return None
        tap = feeds[0]
        if tap.tap_type is not TapType.CONST or not tap.alive:
            return None
        source = tap.source
        skey = id(source)
        if skey not in sources:
            if source is not root:
                # Chained feed: exact to replay only when the junction
                # is a pure constant-flow pass-through — uncapped, not
                # decaying, no proportional drains reading its level —
                # so holding the feed tap out of the graph span and
                # debiting its total afterwards commutes.
                if (not source.alive or source is pool
                        or skey in waiter_ids
                        or source.capacity is not None
                        or (fraction > 0.0 and not source.decay_exempt)):
                    return None
                if any(t.tap_type is not TapType.CONST
                       for t in outbound.get(skey, ())):
                    return None
            drain_rate = sum(t.rate for t in outbound.get(skey, ())
                             if t.tap_type is TapType.CONST)
            # Budget credit: only *root-sourced* constant inflow.  A
            # constant tap from any other reserve clamps to what its
            # source holds (its upstream may itself drain dry), so
            # crediting it would overstate the budget; the root is the
            # one reserve the whole replay machinery already assumes
            # never runs dry (feed debits are taken from it
            # unconditionally).
            inflow_rate = sum(t.rate for t in inbound.get(skey, ())
                              if t.tap_type is TapType.CONST
                              and t.source is root)
            sources[skey] = (source, drain_rate, inflow_rate)
        # One tick of the reference arithmetic, from level zero:
        # deposit the tap's amount, then decay the deposit.
        inflow = tap.rate * tick_s
        if not drain_to_pool:
            # Individual gating: the deposit stays in the reserve and
            # the per-tick increment is exactly the tap amount.
            seen[key] = 0.0
            entries.append(PooledEntry(reserve, tap, inflow, 0.0, 0.0, op))
            continue
        level = 0.0 + inflow
        lost = 0.0
        if fraction > 0.0 and not reserve.decay_exempt and level > 0.0:
            lost = level * fraction
            level = level - lost
        seen[key] = level
        entries.append(PooledEntry(reserve, tap, inflow, lost, level, op))
        if level > 0.0:
            addends.append(level)
        avail_sum = avail_sum + max(0.0, level)
    return PooledAccrual(entries=entries, addends=addends,
                         avail_sum=avail_sum, fraction=fraction,
                         drains=list(sources.values()))


def replay_pooled_accrual(
    graph: "ResourceGraph",
    pool: Reserve,
    accrual: PooledAccrual,
    ticks: int,
    credit: Callable[[Any, float], None],
) -> float:
    """Replay ``ticks`` rounds of pooled accrual in closed form.

    The pool level advances through the *exact* per-tick float
    sequence (``numpy.cumsum`` is sequential, so the chunked scan
    reproduces repeated ``+=`` bit-for-bit); cumulative counters move
    in bulk, which only costs last-ulp rounding relative to
    tick-by-tick accumulation.  ``credit(op, amount)`` books each
    reserve's total contribution on its first queued op.  Returns the
    total amount contributed to the pool.
    """
    if ticks <= 0:
        return 0.0
    if accrual.addends:
        per_tick = len(accrual.addends)
        if ticks * per_tick < 256:
            # Short spans: the literal scalar chain beats numpy setup.
            pool_level = pool._level
            for _ in range(ticks):
                for addend in accrual.addends:
                    pool_level = pool_level + addend
            pool._level = pool_level
        else:
            addends = np.asarray(accrual.addends, dtype=float)
            chunk_ticks = max(1, (1 << 18) // per_tick)
            pool_level = pool._level
            remaining = ticks
            while remaining > 0:
                batch = min(remaining, chunk_ticks)
                seq = np.empty(batch * per_tick + 1)
                seq[0] = pool_level
                if per_tick == 1:
                    # One contributor (the common pooled wait): a
                    # broadcast fill is the same repeated value
                    # without tile's allocation.
                    seq[1:] = addends[0]
                else:
                    seq[1:] = np.tile(addends, batch)
                pool_level = float(np.cumsum(seq)[-1])
                remaining -= batch
            pool._level = pool_level
    contributed_total = 0.0
    root = graph.root
    for entry in accrual.entries:
        if entry.inflow > 0.0:
            flow_total = entry.inflow * ticks
            entry.tap.total_flowed += flow_total
            entry.reserve.total_transferred_in += flow_total
            source = entry.tap.source
            source._level -= flow_total
            source.total_transferred_out += flow_total
        if entry.lost > 0.0:
            decay_total = entry.lost * ticks
            entry.reserve.total_decayed += decay_total
            root._level += decay_total
            root.total_deposited += decay_total
            graph.decay_policy.total_reclaimed += decay_total
        if entry.contribution > 0.0:
            contrib_total = entry.contribution * ticks
            entry.reserve.total_transferred_out += contrib_total
            pool.total_transferred_in += contrib_total
            credit(entry.op, contrib_total)
            contributed_total += contrib_total
    return contributed_total


def replay_reserve_accrual(
    graph: "ResourceGraph",
    accrual: PooledAccrual,
    ticks: int,
) -> float:
    """Replay ``ticks`` rounds of *individual* accrual in closed form.

    The ``drain_to_pool=False`` counterpart of
    :func:`replay_pooled_accrual`: each waiter reserve's level
    advances through the exact per-tick ``+= rate * tick`` chain
    (chunked ``numpy.cumsum``, bit-identical to the reference tick
    loop), the deposits *stay in the reserve* — the §5.5.1 regime
    where every caller gates on its own balance — and the feed-source
    debits and cumulative counters move in bulk.  Returns the total
    amount deposited across all waiter reserves.
    """
    if ticks <= 0:
        return 0.0
    deposited_total = 0.0
    for entry in accrual.entries:
        if entry.inflow <= 0.0:
            continue
        level = entry.reserve._level
        if ticks < 256:
            # Short spans: the literal scalar chain beats numpy setup.
            for _ in range(ticks):
                level = level + entry.inflow
        else:
            chunk_ticks = 1 << 18
            remaining = ticks
            while remaining > 0:
                batch = min(remaining, chunk_ticks)
                seq = np.empty(batch + 1)
                seq[0] = level
                seq[1:] = entry.inflow
                level = float(np.cumsum(seq)[-1])
                remaining -= batch
        entry.reserve._level = level
        flow_total = entry.inflow * ticks
        entry.tap.total_flowed += flow_total
        entry.reserve.total_transferred_in += flow_total
        source = entry.tap.source
        source._level -= flow_total
        source.total_transferred_out += flow_total
        deposited_total += flow_total
    return deposited_total
