"""Reserves: the right to use a quantity of a resource (paper §3.2).

A reserve holds a scalar level of some resource — joules for energy,
but the abstraction is resource-kind generic (the paper's §9 suggests
network bytes and SMS quotas; we support those too).  The kernel
decrements the level as the resource is consumed and refuses actions
for which the reserve is too shallow.  Key behaviours reproduced here:

* **Subdivision** — ``subdivide`` splits off a child reserve holding
  part of the level (the paper's 1000 mJ -> 800/200 example).
* **Transfer** — raw reserve-to-reserve movement ("a thread can also
  perform a reserve-to-reserve transfer provided it is permitted to
  modify both reserves").
* **Debt** — "threads can debit their own reserves up to or into debt
  even if the cost can only be determined after-the-fact" (§5.5.2);
  used for incoming packets and by the scheduler's quantum charging.
* **Accounting** — reserves track cumulative consumption so
  applications can build energy-aware features (§3.2); the image
  viewer polls exactly this.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import DebtLimitError, EnergyError, ReserveEmptyError
from ..kernel.labels import Label
from ..kernel.objects import KernelObject, ObjectType

#: Resource kinds known to the package.  Reserves of different kinds
#: never exchange contents.
ENERGY = "energy"          # joules
NETWORK_BYTES = "net-bytes"  # bytes of data-plan quota (paper §9)
SMS_MESSAGES = "sms"       # text-message quota (paper §9)


class Reserve(KernelObject):
    """A label-protected store of resource consumption rights."""

    TYPE = ObjectType.RESERVE

    def __init__(
        self,
        level: float = 0.0,
        kind: str = ENERGY,
        capacity: Optional[float] = None,
        debt_limit: float = math.inf,
        decay_exempt: bool = False,
        label: Optional[Label] = None,
        name: str = "",
    ) -> None:
        super().__init__(label=label, name=name)
        if level < 0:
            raise EnergyError("initial reserve level must be non-negative")
        if capacity is not None and capacity < level:
            raise EnergyError("capacity smaller than initial level")
        if debt_limit < 0:
            raise EnergyError("debt limit must be non-negative")
        self.kind = kind
        #: Set by the owning graph so liveness changes invalidate its
        #: compiled FlowPlan (generation bump).
        self._graph_hook = None
        self._level = float(level)
        self._capacity = capacity
        #: Maximum magnitude the level may go below zero.
        self.debt_limit = float(debt_limit)
        #: Exempt from the global half-life decay (root + netd; §5.5.2).
        self._decay_exempt = decay_exempt
        # -- cumulative statistics (accounting, §3.2) --
        self.total_consumed = 0.0
        self.total_deposited = 0.0
        self.total_transferred_in = 0.0
        self.total_transferred_out = 0.0
        self.total_decayed = 0.0
        self.consume_failures = 0
        #: Level dropped when the reserve died un-reclaimed.
        self.leaked_at_death = 0.0

    # -- level access ---------------------------------------------------------

    @property
    def capacity(self) -> Optional[float]:
        """Maximum level (None = uncapped); mutation recompiles plans."""
        return self._capacity

    @capacity.setter
    def capacity(self, value: Optional[float]) -> None:
        if value == self._capacity:
            return  # no-op writes must not invalidate compiled plans
        self._capacity = value
        if self._graph_hook is not None:
            self._graph_hook()

    @property
    def decay_exempt(self) -> bool:
        """Exempt from the global decay; mutation recompiles plans."""
        return self._decay_exempt

    @decay_exempt.setter
    def decay_exempt(self, value: bool) -> None:
        value = bool(value)
        if value == self._decay_exempt:
            return  # no-op writes must not invalidate compiled plans
        self._decay_exempt = value
        if self._graph_hook is not None:
            self._graph_hook()

    @property
    def level(self) -> float:
        """Current level; negative values mean the reserve is in debt."""
        return self._level

    @property
    def in_debt(self) -> bool:
        """True if the level is below zero."""
        return self._level < 0.0

    @property
    def headroom(self) -> float:
        """How much more can be deposited (inf when uncapped)."""
        if self.capacity is None:
            return math.inf
        return max(0.0, self.capacity - self._level)

    def can_afford(self, amount: float) -> bool:
        """True if ``amount`` could be consumed without entering debt."""
        return self._level >= amount

    # -- consumption ------------------------------------------------------------

    def consume(self, amount: float, allow_debt: bool = False) -> float:
        """Remove ``amount`` from the reserve; returns the amount removed.

        Without ``allow_debt``, raises :class:`ReserveEmptyError` if the
        level is insufficient — the kernel "prevents threads from
        performing actions for which their reserves do not have
        sufficient resources" (§3.2).  With ``allow_debt``, the level
        may go negative down to ``-debt_limit``.
        """
        self.ensure_alive()
        if amount < 0:
            raise EnergyError("cannot consume a negative amount")
        if amount == 0:
            return 0.0
        if not allow_debt and self._level < amount:
            self.consume_failures += 1
            raise ReserveEmptyError(
                f"reserve {self.name!r}: need {amount:.6g}, have "
                f"{self._level:.6g}")
        if allow_debt and self._level - amount < -self.debt_limit:
            self.consume_failures += 1
            raise DebtLimitError(
                f"reserve {self.name!r}: debit of {amount:.6g} would exceed "
                f"debt limit {self.debt_limit:.6g}")
        self._level -= amount
        self.total_consumed += amount
        return amount

    def deposit(self, amount: float) -> float:
        """Add up to ``amount``; returns the amount actually accepted.

        Deposits are clamped to ``capacity`` — the remainder is the
        caller's to keep (taps leave it in their source reserve).
        """
        self.ensure_alive()
        if amount < 0:
            raise EnergyError("cannot deposit a negative amount")
        accepted = min(amount, self.headroom)
        self._level += accepted
        self.total_deposited += accepted
        return accepted

    # -- transfer & subdivision ----------------------------------------------

    def transfer_to(self, other: "Reserve", amount: float) -> float:
        """Move up to ``amount`` into ``other``; returns amount moved.

        Both reserves must hold the same resource kind.  The amount is
        clamped to this reserve's (non-negative) level and the target's
        headroom, so a transfer never creates debt or overflow.
        """
        self.ensure_alive()
        other.ensure_alive()
        if other is self:
            return 0.0
        if other.kind != self.kind:
            raise EnergyError(
                f"cannot transfer {self.kind} into a {other.kind} reserve")
        if amount < 0:
            raise EnergyError("cannot transfer a negative amount")
        moved = min(amount, max(0.0, self._level), other.headroom)
        if moved <= 0.0:
            return 0.0
        self._level -= moved
        other._level += moved
        self.total_transferred_out += moved
        other.total_transferred_in += moved
        return moved

    def subdivide(self, amount: float, label: Optional[Label] = None,
                  name: str = "") -> "Reserve":
        """Split off a child reserve seeded with ``amount`` (§3.2).

        Raises if this reserve cannot afford the split.
        """
        self.ensure_alive()
        if amount < 0:
            raise EnergyError("cannot subdivide a negative amount")
        if self._level < amount:
            raise ReserveEmptyError(
                f"reserve {self.name!r}: cannot split off {amount:.6g} "
                f"from level {self._level:.6g}")
        child = Reserve(
            level=0.0,
            kind=self.kind,
            label=label if label is not None else self.label,
            name=name or f"{self.name}/sub",
        )
        self._level -= amount
        child._level = amount
        self.total_transferred_out += amount
        child.total_transferred_in += amount
        return child

    # -- decay support -----------------------------------------------------------

    def decay(self, fraction: float) -> float:
        """Remove ``fraction`` of a positive level; returns the amount.

        Called by the decay engine, which routes the proceeds back to
        the root reserve.  Exempt or indebted reserves lose nothing.
        """
        self.ensure_alive()
        if not 0.0 <= fraction <= 1.0:
            raise EnergyError(f"decay fraction {fraction} out of [0, 1]")
        if self.decay_exempt or self._level <= 0.0:
            return 0.0
        lost = self._level * fraction
        self._level -= lost
        self.total_decayed += lost
        return lost

    # -- misc -------------------------------------------------------------------

    def on_delete(self) -> None:
        # A dying reserve's remaining energy is dropped (the graph's
        # ``delete_reserve(reclaim_to=...)`` sends it to a parent first
        # when revocation should recover the energy).  Record the drop
        # so conservation audits can still balance.
        self.leaked_at_death = max(0.0, self._level)
        self._level = 0.0
        if self._graph_hook is not None:
            self._graph_hook()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<reserve #{self.object_id} {self.name!r} "
                f"{self._level:.6g} {self.kind}>")
